package mip

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"eagleeye/internal/lp"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	return sol
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary.
	// Best: a + c = 17 (weight 5); b + c = 20 (weight 6) -> 20.
	p := NewBinary(3)
	p.C = []float64{10, 13, 7}
	p.AddRow([]float64{3, 4, 2}, lp.LE, 6)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-20) > 1e-6 {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
	vals, err := sol.Values()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 || vals[1] != 1 || vals[2] != 1 {
		t.Errorf("values = %v, want [0 1 1]", vals)
	}
}

func TestFractionalLPIntegerGap(t *testing.T) {
	// max x st 2x <= 3, x integer -> LP gives 1.5, MIP must give 1.
	p := &Problem{}
	p.C = []float64{1}
	p.Integer = []bool{true}
	p.AddRow([]float64{2}, lp.LE, 3)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous; x + y <= 2.5, x <= 1.7.
	// x=1 (integer), y=1.5 -> 3.5.
	p := &Problem{}
	p.C = []float64{2, 1}
	p.Integer = []bool{true, false}
	p.AddRow([]float64{1, 1}, lp.LE, 2.5)
	p.AddRow([]float64{1, 0}, lp.LE, 1.7)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-3.5) > 1e-6 {
		t.Errorf("objective = %v, want 3.5", sol.Objective)
	}
	if math.Abs(sol.X[0]-1) > 1e-6 {
		t.Errorf("x = %v, want 1", sol.X[0])
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// 0.4 <= x <= 0.6, x integer: LP feasible, no integer point.
	p := &Problem{}
	p.C = []float64{1}
	p.Integer = []bool{true}
	p.Lower = []float64{0.4}
	p.Upper = []float64{0.6}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	p := NewBinary(1)
	p.C = []float64{1}
	p.AddRow([]float64{1}, lp.GE, 3) // binary can't reach 3
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{}
	p.C = []float64{1}
	p.Integer = []bool{true}
	p.AddRow([]float64{1}, lp.GE, 0)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Errorf("status = %v", sol.Status)
	}
}

func TestSetCover(t *testing.T) {
	// Universe {1..5}; sets A={1,2,3}, B={2,4}, C={3,4}, D={4,5}, E={1,5}.
	// Min cover: A + D = 2 sets.
	sets := [][]int{{0, 1, 2}, {1, 3}, {2, 3}, {3, 4}, {0, 4}}
	p := NewBinary(len(sets))
	for j := range p.C {
		p.C[j] = -1 // minimize count
	}
	for elem := 0; elem < 5; elem++ {
		row := make([]float64, len(sets))
		for j, s := range sets {
			for _, e := range s {
				if e == elem {
					row[j] = 1
				}
			}
		}
		p.AddRow(row, lp.GE, 1)
	}
	sol := solveOK(t, p)
	if math.Abs(-sol.Objective-2) > 1e-6 {
		t.Errorf("cover size = %v, want 2", -sol.Objective)
	}
}

// bruteForceBinary enumerates all binary assignments for cross-checking.
func bruteForceBinary(p *Problem) (best float64, found bool) {
	n := len(p.C)
	best = math.Inf(-1)
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for i, row := range p.A {
			lhs := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					lhs += row[j]
				}
			}
			switch p.Senses[i] {
			case lp.LE:
				ok = ok && lhs <= p.B[i]+1e-9
			case lp.GE:
				ok = ok && lhs >= p.B[i]-1e-9
			case lp.EQ:
				ok = ok && math.Abs(lhs-p.B[i]) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		val := 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				val += p.C[j]
			}
		}
		if val > best {
			best = val
			found = true
		}
	}
	return best, found
}

func TestRandomBinaryMIPsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(8) // up to 10 binaries
		m := 1 + rng.Intn(5)
		p := NewBinary(n)
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.Float64()*20 - 5)
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = math.Round(rng.Float64()*6 - 2)
			}
			sense := lp.LE
			if rng.Intn(3) == 0 {
				sense = lp.GE
			}
			p.AddRow(row, sense, math.Round(rng.Float64()*8-1))
		}
		want, feasible := bruteForceBinary(p)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if sol.Status != StatusInfeasible {
				t.Fatalf("trial %d: brute force infeasible but solver says %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, sol.Status)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: objective %v, want %v", trial, sol.Objective, want)
		}
	}
}

func TestGeneralIntegerVariables(t *testing.T) {
	// max 3x + 4y st x + 2y <= 14, 3x - y >= 0, x - y <= 2; x, y integer.
	// Known optimum: x=6, y=4 -> 34.
	p := &Problem{}
	p.C = []float64{3, 4}
	p.Integer = []bool{true, true}
	p.AddRow([]float64{1, 2}, lp.LE, 14)
	p.AddRow([]float64{3, -1}, lp.GE, 0)
	p.AddRow([]float64{1, -1}, lp.LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-34) > 1e-6 {
		t.Errorf("objective = %v, want 34", sol.Objective)
	}
	if math.Abs(sol.X[0]-6) > 1e-6 || math.Abs(sol.X[1]-4) > 1e-6 {
		t.Errorf("x = %v, want [6 4]", sol.X)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 25
	p := NewBinary(n)
	for j := 0; j < n; j++ {
		p.C[j] = rng.Float64()
	}
	row := make([]float64, n)
	for j := range row {
		row[j] = rng.Float64() + 0.5
	}
	p.AddRow(row, lp.LE, float64(n)/4)
	sol, err := SolveOpts(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Nodes > 1 {
		t.Errorf("explored %d nodes with MaxNodes=1", sol.Nodes)
	}
	if sol.Status == StatusOptimal && sol.Nodes == 1 {
		// A root-integral solve is legitimately optimal in one node.
		return
	}
	if sol.Status != StatusFeasible && sol.Status != StatusLimit {
		t.Errorf("status = %v", sol.Status)
	}
}

func TestTimeLimit(t *testing.T) {
	p := NewBinary(2)
	p.C = []float64{1, 1}
	p.AddRow([]float64{1, 1}, lp.LE, 1)
	sol, err := SolveOpts(p, Options{TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Errorf("status = %v", sol.Status)
	}
}

func TestValidate(t *testing.T) {
	p := NewBinary(2)
	p.C = []float64{1, 1}
	p.Integer = []bool{true} // wrong length
	if err := p.Validate(); err == nil {
		t.Error("mismatched Integer length accepted")
	}
}

func TestAddSparseRow(t *testing.T) {
	p := NewBinary(4)
	p.C = []float64{1, 1, 1, 1}
	p.AddSparseRow([]int{0, 2}, []float64{1, 1}, lp.LE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-3) > 1e-6 {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
}

func TestValuesNoSolution(t *testing.T) {
	var s Solution
	if _, err := s.Values(); err == nil {
		t.Error("want error for empty solution")
	}
}

func BenchmarkKnapsack20(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 20
	p := NewBinary(n)
	row := make([]float64, n)
	for j := 0; j < n; j++ {
		p.C[j] = 1 + rng.Float64()*9
		row[j] = 1 + rng.Float64()*9
	}
	p.AddRow(row, lp.LE, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
