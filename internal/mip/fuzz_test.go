package mip

import (
	"math"
	"math/rand"
	"testing"

	"eagleeye/internal/lp"
)

// FuzzBinaryMIPDifferential cross-checks the branch-and-bound solver
// against exhaustive enumeration on small random binary MIPs (up to 8
// variables and 6 rows): statuses must agree and, when an optimum exists,
// the objectives must match. The byte seed drives a PRNG so every fuzz
// input maps to one deterministic instance.
func FuzzBinaryMIPDifferential(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(987654321))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7) // up to 8 binaries
		m := 1 + rng.Intn(6) // up to 6 rows
		p := NewBinary(n)
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.Float64()*20 - 8)
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				// Integer coefficients in [-4, 4] with some zeros keep the
				// brute-force feasibility decision numerically exact.
				row[j] = math.Round(rng.Float64()*8 - 4)
			}
			sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
			p.AddRow(row, sense, math.Round(rng.Float64()*10-3))
		}

		truth, feasible := bruteForceBinary(p)
		sol, err := SolveOpts(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case feasible && sol.Status != StatusOptimal:
			t.Fatalf("seed %d: brute force found optimum %v, solver says %v", seed, truth, sol.Status)
		case !feasible && sol.Status != StatusInfeasible:
			t.Fatalf("seed %d: brute force proves infeasibility, solver says %v", seed, sol.Status)
		}
		if !feasible {
			return
		}
		if math.Abs(sol.Objective-truth) > 1e-6 {
			t.Fatalf("seed %d: solver objective %v, brute force %v", seed, sol.Objective, truth)
		}
		// The returned point must itself be feasible and integral, and
		// worth what the solution claims.
		val := 0.0
		for j := range sol.X {
			r := math.Round(sol.X[j])
			if math.Abs(sol.X[j]-r) > 1e-6 || r < 0 || r > 1 {
				t.Fatalf("seed %d: non-binary component %v", seed, sol.X)
			}
			val += p.C[j] * r
		}
		if math.Abs(val-truth) > 1e-6 {
			t.Fatalf("seed %d: point value %v, optimum %v", seed, val, truth)
		}
		if !feasiblePoint(&p.Problem, sol.X) {
			t.Fatalf("seed %d: returned point violates a constraint: %v", seed, sol.X)
		}
	})
}
