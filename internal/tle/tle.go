// Package tle parses, validates, formats and generates NORAD two-line
// element sets (TLEs). The paper's prototype instantiates its polar orbit
// from Celestrak TLEs (§5.3); this package provides the equivalent:
// constellations are described by generated TLEs, and operators can load
// real Celestrak elements through Parse.
package tle

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// TLE is a parsed two-line element set. Angles are degrees, mean motion is
// revolutions per day, per the TLE convention.
type TLE struct {
	Name           string    // optional line 0 (satellite name)
	CatalogNumber  int       // NORAD catalog number
	Classification byte      // 'U', 'C' or 'S'
	IntlDesignator string    // international designator, e.g. "24001A"
	Epoch          time.Time // epoch in UTC
	MeanMotionDot  float64   // first derivative of mean motion / 2 (rev/day^2)
	BStar          float64   // drag term (1/earth radii)
	ElementSet     int       // element set number
	InclinationDeg float64   // orbit inclination
	RAANDeg        float64   // right ascension of the ascending node
	Eccentricity   float64   // dimensionless
	ArgPerigeeDeg  float64   // argument of perigee
	MeanAnomalyDeg float64   // mean anomaly at epoch
	MeanMotion     float64   // revolutions per day
	RevNumber      int       // revolution number at epoch
}

// PeriodSeconds returns the orbital period implied by the mean motion.
func (t TLE) PeriodSeconds() float64 {
	if t.MeanMotion <= 0 {
		return 0
	}
	return 86400.0 / t.MeanMotion
}

// SemiMajorAxisM returns the semi-major axis in meters implied by the mean
// motion via Kepler's third law (mu = 3.986004418e14 m^3/s^2).
func (t TLE) SemiMajorAxisM() float64 {
	p := t.PeriodSeconds()
	if p == 0 {
		return 0
	}
	const mu = 3.986004418e14
	return math.Cbrt(mu * p * p / (4 * math.Pi * math.Pi))
}

// Validate reports whether the element values are physically plausible.
func (t TLE) Validate() error {
	switch {
	case t.InclinationDeg < 0 || t.InclinationDeg > 180:
		return fmt.Errorf("tle: inclination %v out of [0,180]", t.InclinationDeg)
	case t.Eccentricity < 0 || t.Eccentricity >= 1:
		return fmt.Errorf("tle: eccentricity %v out of [0,1)", t.Eccentricity)
	case t.MeanMotion <= 0 || t.MeanMotion > 20:
		return fmt.Errorf("tle: mean motion %v rev/day implausible", t.MeanMotion)
	case t.RAANDeg < 0 || t.RAANDeg >= 360:
		return fmt.Errorf("tle: RAAN %v out of [0,360)", t.RAANDeg)
	case t.ArgPerigeeDeg < 0 || t.ArgPerigeeDeg >= 360:
		return fmt.Errorf("tle: argument of perigee %v out of [0,360)", t.ArgPerigeeDeg)
	case t.MeanAnomalyDeg < 0 || t.MeanAnomalyDeg >= 360:
		return fmt.Errorf("tle: mean anomaly %v out of [0,360)", t.MeanAnomalyDeg)
	case math.Abs(t.MeanMotionDot) >= 1:
		// The field is a bare fraction (".00016717"); magnitudes >= 1 are
		// unphysical and unrepresentable in the fixed columns.
		return fmt.Errorf("tle: mean motion derivative %v out of (-1,1)", t.MeanMotionDot)
	case math.Abs(t.BStar) >= 1:
		// Drag terms are ~1e-3 1/earth-radii; >= 1 cannot be encoded in
		// the 8-character assumed-decimal field.
		return fmt.Errorf("tle: bstar %v out of (-1,1)", t.BStar)
	}
	return nil
}

// checksum computes the TLE modulo-10 checksum of the first 68 characters:
// digits count their value, '-' counts 1, everything else 0.
func checksum(line string) int {
	sum := 0
	for i := 0; i < len(line) && i < 68; i++ {
		c := line[i]
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return sum % 10
}

// Parse parses a TLE from two or three lines (a leading name line is
// optional). Checksums are verified.
func Parse(lines ...string) (TLE, error) {
	var t TLE
	var l1, l2 string
	switch len(lines) {
	case 2:
		l1, l2 = lines[0], lines[1]
	case 3:
		t.Name = strings.TrimSpace(lines[0])
		l1, l2 = lines[1], lines[2]
	default:
		return t, fmt.Errorf("tle: want 2 or 3 lines, got %d", len(lines))
	}
	if len(l1) < 69 || len(l2) < 69 {
		return t, fmt.Errorf("tle: lines must be at least 69 characters (got %d, %d)", len(l1), len(l2))
	}
	if l1[0] != '1' || l2[0] != '2' {
		return t, fmt.Errorf("tle: bad line numbers %q, %q", l1[0], l2[0])
	}
	if got, want := int(l1[68]-'0'), checksum(l1); got != want {
		return t, fmt.Errorf("tle: line 1 checksum %d, want %d", got, want)
	}
	if got, want := int(l2[68]-'0'), checksum(l2); got != want {
		return t, fmt.Errorf("tle: line 2 checksum %d, want %d", got, want)
	}

	var err error
	if t.CatalogNumber, err = atoiField(l1[2:7]); err != nil {
		return t, fmt.Errorf("tle: catalog number: %w", err)
	}
	t.Classification = l1[7]
	t.IntlDesignator = strings.TrimSpace(l1[9:17])
	if t.Epoch, err = parseEpoch(l1[18:32]); err != nil {
		return t, err
	}
	if t.MeanMotionDot, err = parseFloatField(l1[33:43]); err != nil {
		return t, fmt.Errorf("tle: mean motion dot: %w", err)
	}
	if t.BStar, err = parseAssumedDecimal(l1[53:61]); err != nil {
		return t, fmt.Errorf("tle: bstar: %w", err)
	}
	if t.ElementSet, err = atoiField(l1[64:68]); err != nil {
		return t, fmt.Errorf("tle: element set: %w", err)
	}

	if t.InclinationDeg, err = parseFloatField(l2[8:16]); err != nil {
		return t, fmt.Errorf("tle: inclination: %w", err)
	}
	if t.RAANDeg, err = parseFloatField(l2[17:25]); err != nil {
		return t, fmt.Errorf("tle: raan: %w", err)
	}
	ecc, err := atoiField(l2[26:33])
	if err != nil {
		return t, fmt.Errorf("tle: eccentricity: %w", err)
	}
	t.Eccentricity = float64(ecc) / 1e7
	if t.ArgPerigeeDeg, err = parseFloatField(l2[34:42]); err != nil {
		return t, fmt.Errorf("tle: arg perigee: %w", err)
	}
	if t.MeanAnomalyDeg, err = parseFloatField(l2[43:51]); err != nil {
		return t, fmt.Errorf("tle: mean anomaly: %w", err)
	}
	if t.MeanMotion, err = parseFloatField(l2[52:63]); err != nil {
		return t, fmt.Errorf("tle: mean motion: %w", err)
	}
	if t.RevNumber, err = atoiField(l2[63:68]); err != nil {
		return t, fmt.Errorf("tle: rev number: %w", err)
	}
	return t, t.Validate()
}

func atoiField(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	return strconv.Atoi(s)
}

func parseFloatField(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// parseAssumedDecimal parses the TLE "assumed decimal point" exponent form,
// e.g. " 12345-3" = 0.12345e-3 and "-12345+1" = -0.12345e+1.
func parseAssumedDecimal(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "00000-0" || s == "00000+0" {
		return 0, nil
	}
	sign := 1.0
	if s[0] == '-' {
		sign = -1
		s = s[1:]
	} else if s[0] == '+' {
		s = s[1:]
	}
	if len(s) < 2 {
		return 0, fmt.Errorf("assumed decimal field too short: %q", s)
	}
	expPart := s[len(s)-2:]
	mantPart := s[:len(s)-2]
	mant, err := strconv.ParseFloat("0."+mantPart, 64)
	if err != nil {
		return 0, err
	}
	exp, err := strconv.Atoi(strings.Replace(expPart, "+", "", 1))
	if err != nil {
		return 0, err
	}
	return sign * mant * math.Pow(10, float64(exp)), nil
}

// parseEpoch parses the YYDDD.DDDDDDDD epoch field.
func parseEpoch(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	if len(s) < 5 {
		return time.Time{}, fmt.Errorf("tle: epoch field %q too short", s)
	}
	yy, err := strconv.Atoi(s[:2])
	if err != nil {
		return time.Time{}, fmt.Errorf("tle: epoch year: %w", err)
	}
	year := 2000 + yy
	if yy >= 57 { // TLE convention: 57-99 are 1957-1999.
		year = 1900 + yy
	}
	dayFrac, err := strconv.ParseFloat(s[2:], 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("tle: epoch day: %w", err)
	}
	base := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.Add(time.Duration((dayFrac - 1) * 86400 * float64(time.Second))), nil
}

// Format renders the TLE as two 69-character lines with valid checksums.
func (t TLE) Format() (line1, line2 string) {
	epochYY := t.Epoch.Year() % 100
	dayOfYear := float64(t.Epoch.YearDay()) +
		(time.Duration(t.Epoch.Hour())*time.Hour+
			time.Duration(t.Epoch.Minute())*time.Minute+
			time.Duration(t.Epoch.Second())*time.Second+
			time.Duration(t.Epoch.Nanosecond())).Seconds()/86400

	l1 := fmt.Sprintf("1 %05d%c %-8s %02d%012.8f %s %s %s 0 %4d",
		t.CatalogNumber%100000, t.Classification, t.IntlDesignator,
		epochYY, dayOfYear,
		formatMeanMotionDot(t.MeanMotionDot),
		" 00000-0", // second derivative (8-char assumed-decimal), always zero here
		formatAssumedDecimal(t.BStar),
		t.ElementSet%10000)
	l1 = pad69(l1)
	l1 += strconv.Itoa(checksum(l1))

	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f%5d",
		t.CatalogNumber%100000, t.InclinationDeg, t.RAANDeg,
		int(math.Round(t.Eccentricity*1e7)),
		t.ArgPerigeeDeg, t.MeanAnomalyDeg, t.MeanMotion, t.RevNumber%100000)
	l2 = pad69(l2)
	l2 += strconv.Itoa(checksum(l2))
	return l1, l2
}

func pad69(s string) string {
	for len(s) < 68 {
		s += " "
	}
	return s[:68]
}

func formatMeanMotionDot(v float64) string {
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	frac := fmt.Sprintf("%.8f", v)
	return sign + frac[1:] // drop leading 0, keep ".XXXXXXXX"
}

func formatAssumedDecimal(v float64) string {
	if v == 0 {
		return " 00000-0"
	}
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	exp := int(math.Floor(math.Log10(v))) + 1
	mant := v / math.Pow(10, float64(exp))
	m := int(math.Round(mant * 1e5))
	if m >= 100000 { // rounding pushed the mantissa over; renormalize
		m /= 10
		exp++
	}
	expSign := "+"
	if exp < 0 {
		expSign = "-"
		exp = -exp
	}
	return fmt.Sprintf("%s%05d%s%d", sign, m, expSign, exp)
}
