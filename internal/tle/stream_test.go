package tle

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseAllMixedStream(t *testing.T) {
	spec := PaperOrbit(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	var buf bytes.Buffer
	var sets []TLE
	for i := 0; i < 3; i++ {
		el, err := spec.Generate(i, 3, 0, "")
		if err != nil {
			t.Fatal(err)
		}
		el.Name = ""
		sets = append(sets, el)
	}
	if err := WriteAll(&buf, sets); err != nil {
		t.Fatal(err)
	}
	// Append a bare 2-line entry (no name).
	l1, l2 := sets[0].Format()
	buf.WriteString("\n" + l1 + "\n" + l2 + "\n")

	got, err := ParseAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d sets, want 4", len(got))
	}
	for i, g := range got {
		if g.InclinationDeg != 97.2 {
			t.Errorf("set %d inclination = %v", i, g.InclinationDeg)
		}
	}
	// Names synthesized by WriteAll survive the round trip.
	if !strings.HasPrefix(got[0].Name, "SAT-") {
		t.Errorf("name = %q", got[0].Name)
	}
}

func TestParseAllErrors(t *testing.T) {
	spec := PaperOrbit(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	el, _ := spec.Generate(0, 1, 0, "X")
	l1, l2 := el.Format()

	cases := []string{
		l1,                               // truncated: line 1 without line 2
		l2,                               // line 2 without line 1
		"NAME\nNAME2\n" + l1 + "\n" + l2, // name inside pending entry
		"NAME\n" + l1,                    // truncated at EOF
	}
	for i, c := range cases {
		if _, err := ParseAll(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, c)
		}
	}
	// Empty stream is fine.
	got, err := ParseAll(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %v, %d sets", err, len(got))
	}
}
