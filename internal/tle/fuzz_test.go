package tle

import (
	"strings"
	"testing"
)

// FuzzParse ensures arbitrary input never panics the TLE parser and that
// accepted inputs survive a format round trip.
func FuzzParse(f *testing.F) {
	f.Add(issTLE[1] + "\n" + issTLE[2])
	f.Add("garbage")
	f.Add("1 \n2 ")
	f.Fuzz(func(t *testing.T, input string) {
		lines := strings.Split(input, "\n")
		if len(lines) > 3 {
			lines = lines[:3]
		}
		parsed, err := Parse(lines...)
		if err != nil {
			return
		}
		l1, l2 := parsed.Format()
		if _, err := Parse(l1, l2); err != nil {
			t.Fatalf("accepted TLE does not round trip: %v\n%s\n%s", err, l1, l2)
		}
	})
}

// FuzzParseAll ensures arbitrary streams never panic the stream parser.
func FuzzParseAll(f *testing.F) {
	f.Add("NAME\n" + issTLE[1] + "\n" + issTLE[2] + "\n")
	f.Add("\n\n1 x\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ParseAll(strings.NewReader(input))
	})
}
