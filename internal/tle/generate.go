package tle

import (
	"fmt"
	"math"
	"time"
)

// OrbitSpec describes the circular orbit a constellation deploys into.
// The paper's evaluation (§5.3) uses a polar sun-synchronous-style orbit:
// inclination 97.2°, altitude 475 km, period ~94 minutes, all satellites in
// the same orbital plane.
type OrbitSpec struct {
	AltitudeM      float64   // orbit altitude above the mean-radius sphere, meters
	InclinationDeg float64   // inclination, degrees
	RAANDeg        float64   // right ascension of ascending node, degrees
	Epoch          time.Time // element epoch
}

// PaperOrbit returns the orbit used throughout the paper's evaluation.
func PaperOrbit(epoch time.Time) OrbitSpec {
	return OrbitSpec{
		AltitudeM:      475e3,
		InclinationDeg: 97.2,
		RAANDeg:        0,
		Epoch:          epoch,
	}
}

// MeanMotionRevPerDay returns the mean motion for a circular orbit at the
// spec's altitude.
func (s OrbitSpec) MeanMotionRevPerDay() float64 {
	const (
		mu = 3.986004418e14
		re = 6371008.8
	)
	a := re + s.AltitudeM
	period := 2 * math.Pi * math.Sqrt(a*a*a/mu)
	return 86400 / period
}

// Generate produces a TLE for satellite index idx (0-based) of a
// constellation of n satellites evenly phased within the spec's single
// orbital plane, with an extra phase offset in degrees (used to trail
// followers behind their leader by a fixed along-track distance).
func (s OrbitSpec) Generate(idx, n int, phaseOffsetDeg float64, name string) (TLE, error) {
	if n <= 0 {
		return TLE{}, fmt.Errorf("tle: constellation size %d must be positive", n)
	}
	if idx < 0 || idx >= n {
		return TLE{}, fmt.Errorf("tle: index %d out of range [0,%d)", idx, n)
	}
	ma := math.Mod(360*float64(idx)/float64(n)+phaseOffsetDeg, 360)
	if ma < 0 {
		ma += 360
	}
	t := TLE{
		Name:           name,
		CatalogNumber:  90000 + idx,
		Classification: 'U',
		IntlDesignator: fmt.Sprintf("26%03dA", idx%1000),
		Epoch:          s.Epoch,
		InclinationDeg: s.InclinationDeg,
		RAANDeg:        math.Mod(s.RAANDeg+360, 360),
		Eccentricity:   0,
		ArgPerigeeDeg:  0,
		MeanAnomalyDeg: ma,
		MeanMotion:     s.MeanMotionRevPerDay(),
		ElementSet:     1,
		RevNumber:      1,
	}
	return t, t.Validate()
}
