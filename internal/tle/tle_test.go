package tle

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// issTLE is a real ISS element set (checksums valid).
var issTLE = []string{
	"ISS (ZARYA)",
	"1 25544U 98067A   24001.50000000  .00016717  00000-0  10270-3 0  9009",
	"2 25544  51.6400 208.9163 0006317  69.9862 290.2624 15.49560532  1000",
}

func TestParseISS(t *testing.T) {
	tl, err := Parse(issTLE...)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tl.Name != "ISS (ZARYA)" {
		t.Errorf("name = %q", tl.Name)
	}
	if tl.CatalogNumber != 25544 {
		t.Errorf("catalog = %d", tl.CatalogNumber)
	}
	if tl.Classification != 'U' {
		t.Errorf("classification = %c", tl.Classification)
	}
	if tl.IntlDesignator != "98067A" {
		t.Errorf("designator = %q", tl.IntlDesignator)
	}
	if math.Abs(tl.InclinationDeg-51.64) > 1e-9 {
		t.Errorf("inclination = %v", tl.InclinationDeg)
	}
	if math.Abs(tl.Eccentricity-0.0006317) > 1e-12 {
		t.Errorf("eccentricity = %v", tl.Eccentricity)
	}
	if math.Abs(tl.MeanMotion-15.49560532) > 1e-9 {
		t.Errorf("mean motion = %v", tl.MeanMotion)
	}
	if tl.Epoch.Year() != 2024 || tl.Epoch.YearDay() != 1 || tl.Epoch.Hour() != 12 {
		t.Errorf("epoch = %v", tl.Epoch)
	}
	if math.Abs(tl.BStar-0.10270e-3) > 1e-12 {
		t.Errorf("bstar = %v", tl.BStar)
	}
	// ISS period is about 92.8 minutes; semi-major axis about 6790 km.
	if p := tl.PeriodSeconds(); p < 5500 || p > 5700 {
		t.Errorf("period = %v s", p)
	}
	if a := tl.SemiMajorAxisM(); a < 6.7e6 || a > 6.9e6 {
		t.Errorf("semi-major axis = %v m", a)
	}
}

func TestParseTwoLines(t *testing.T) {
	tl, err := Parse(issTLE[1], issTLE[2])
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tl.Name != "" {
		t.Errorf("name should be empty, got %q", tl.Name)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("only one line"); err == nil {
		t.Error("want error for 1 line")
	}
	if _, err := Parse("short", "short"); err == nil {
		t.Error("want error for short lines")
	}
	// Corrupt a digit: checksum must fail.
	bad := strings.Replace(issTLE[1], "25544", "25545", 1)
	if _, err := Parse(bad, issTLE[2]); err == nil {
		t.Error("want checksum error")
	}
	// Swap line numbers.
	if _, err := Parse(issTLE[2], issTLE[1]); err == nil {
		t.Error("want line-number error")
	}
}

func TestChecksum(t *testing.T) {
	// Checksum of line 1 of the ISS TLE (last char) must match computation.
	l := issTLE[1]
	if got := checksum(l); got != int(l[68]-'0') {
		t.Errorf("checksum = %d, want %c", got, l[68])
	}
}

func TestAssumedDecimal(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{" 12345-3", 0.12345e-3},
		{"-12345-3", -0.12345e-3},
		{" 12345+1", 0.12345e1},
		{" 00000-0", 0},
		{"00000+0", 0},
	}
	for _, c := range cases {
		got, err := parseAssumedDecimal(c.in)
		if err != nil {
			t.Errorf("parseAssumedDecimal(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-15 {
			t.Errorf("parseAssumedDecimal(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig, err := Parse(issTLE...)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := orig.Format()
	if len(l1) != 69 || len(l2) != 69 {
		t.Fatalf("formatted lengths = %d, %d", len(l1), len(l2))
	}
	re, err := Parse(l1, l2)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s\n%s", err, l1, l2)
	}
	if re.CatalogNumber != orig.CatalogNumber ||
		math.Abs(re.InclinationDeg-orig.InclinationDeg) > 1e-4 ||
		math.Abs(re.RAANDeg-orig.RAANDeg) > 1e-4 ||
		math.Abs(re.Eccentricity-orig.Eccentricity) > 1e-7 ||
		math.Abs(re.MeanMotion-orig.MeanMotion) > 1e-7 {
		t.Errorf("round trip mismatch: %+v vs %+v", re, orig)
	}
	if re.Epoch.Sub(orig.Epoch).Abs() > time.Second {
		t.Errorf("epoch drift: %v vs %v", re.Epoch, orig.Epoch)
	}
}

func TestValidate(t *testing.T) {
	good := TLE{InclinationDeg: 97.2, MeanMotion: 15.2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid TLE rejected: %v", err)
	}
	bad := []TLE{
		{InclinationDeg: -1, MeanMotion: 15},
		{InclinationDeg: 97, Eccentricity: 1.5, MeanMotion: 15},
		{InclinationDeg: 97, MeanMotion: 0},
		{InclinationDeg: 97, MeanMotion: 15, RAANDeg: 400},
		{InclinationDeg: 97, MeanMotion: 15, ArgPerigeeDeg: -3},
		{InclinationDeg: 97, MeanMotion: 15, MeanAnomalyDeg: 360},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid TLE accepted", i)
		}
	}
}

func TestPaperOrbit(t *testing.T) {
	spec := PaperOrbit(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	// The paper quotes a 94-minute period at 475 km.
	period := 86400 / spec.MeanMotionRevPerDay()
	if period < 92*60 || period > 96*60 {
		t.Errorf("period = %v s, want ~94 min", period)
	}
	tl, err := spec.Generate(0, 4, 0, "EAGLEEYE-L0")
	if err != nil {
		t.Fatal(err)
	}
	if tl.InclinationDeg != 97.2 {
		t.Errorf("inclination = %v", tl.InclinationDeg)
	}
	l1, l2 := tl.Format()
	if _, err := Parse(l1, l2); err != nil {
		t.Errorf("generated TLE does not re-parse: %v", err)
	}
}

func TestGenerateEvenPhasing(t *testing.T) {
	spec := PaperOrbit(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	n := 8
	var prev float64
	for i := 0; i < n; i++ {
		tl, err := spec.Generate(i, n, 0, "")
		if err != nil {
			t.Fatal(err)
		}
		want := 360 * float64(i) / float64(n)
		if math.Abs(tl.MeanAnomalyDeg-want) > 1e-9 {
			t.Errorf("sat %d mean anomaly = %v, want %v", i, tl.MeanAnomalyDeg, want)
		}
		if i > 0 && tl.MeanAnomalyDeg <= prev {
			t.Errorf("mean anomalies not increasing at %d", i)
		}
		prev = tl.MeanAnomalyDeg
	}
}

func TestGenerateErrors(t *testing.T) {
	spec := PaperOrbit(time.Now())
	if _, err := spec.Generate(0, 0, 0, ""); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := spec.Generate(5, 3, 0, ""); err == nil {
		t.Error("want error for idx out of range")
	}
	if _, err := spec.Generate(-1, 3, 0, ""); err == nil {
		t.Error("want error for negative idx")
	}
}

func TestGeneratePhaseOffsetWraps(t *testing.T) {
	spec := PaperOrbit(time.Now())
	tl, err := spec.Generate(0, 1, -30, "")
	if err != nil {
		t.Fatal(err)
	}
	if tl.MeanAnomalyDeg < 0 || tl.MeanAnomalyDeg >= 360 {
		t.Errorf("mean anomaly %v not wrapped", tl.MeanAnomalyDeg)
	}
	if math.Abs(tl.MeanAnomalyDeg-330) > 1e-9 {
		t.Errorf("mean anomaly = %v, want 330", tl.MeanAnomalyDeg)
	}
}

func TestFormatAssumedDecimalProperty(t *testing.T) {
	f := func(mantSeed uint32, expSeed int8) bool {
		mant := float64(mantSeed%90000+10000) / 1e5 // [0.1, 1)
		exp := int(expSeed % 5)
		v := mant * math.Pow(10, float64(exp))
		s := formatAssumedDecimal(v)
		if len(s) != 8 {
			return false
		}
		got, err := parseAssumedDecimal(s)
		return err == nil && math.Abs(got-v)/v < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseEpochPre2000(t *testing.T) {
	// Year field 57-99 means 1957-1999 per the TLE convention.
	ts, err := parseEpoch("98123.25000000")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Year() != 1998 || ts.YearDay() != 123 || ts.Hour() != 6 {
		t.Errorf("epoch = %v", ts)
	}
	if _, err := parseEpoch("9"); err == nil {
		t.Error("short epoch accepted")
	}
	if _, err := parseEpoch("xx123.5"); err == nil {
		t.Error("bad year accepted")
	}
	if _, err := parseEpoch("24xxx"); err == nil {
		t.Error("bad day accepted")
	}
}

func TestFormatNegativeMeanMotionDot(t *testing.T) {
	tl, err := Parse(issTLE...)
	if err != nil {
		t.Fatal(err)
	}
	tl.MeanMotionDot = -0.00001234
	l1, l2 := tl.Format()
	re, err := Parse(l1, l2)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if re.MeanMotionDot >= 0 {
		t.Errorf("sign lost: %v", re.MeanMotionDot)
	}
}

func TestFormatNegativeBStar(t *testing.T) {
	tl, _ := Parse(issTLE...)
	tl.BStar = -0.5e-4
	l1, l2 := tl.Format()
	re, err := Parse(l1, l2)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if math.Abs(re.BStar-tl.BStar) > 1e-9 {
		t.Errorf("bstar = %v, want %v", re.BStar, tl.BStar)
	}
}

func TestAssumedDecimalErrors(t *testing.T) {
	for _, bad := range []string{"-", "1", "ab-cd-3", "12345-x"} {
		if _, err := parseAssumedDecimal(bad); err == nil && bad != "1" {
			t.Errorf("parseAssumedDecimal(%q) accepted", bad)
		}
	}
}

func TestPeriodAndAxisZeroMeanMotion(t *testing.T) {
	var tl TLE
	if tl.PeriodSeconds() != 0 || tl.SemiMajorAxisM() != 0 {
		t.Error("zero mean motion should give zero period/axis")
	}
}

func TestParseFieldErrors(t *testing.T) {
	// Corrupt individual numeric fields while keeping checksums valid is
	// laborious; instead verify atoiField on whitespace and garbage.
	if v, err := atoiField("   "); err != nil || v != 0 {
		t.Error("blank field should parse as 0")
	}
	if _, err := atoiField("12x"); err == nil {
		t.Error("garbage accepted")
	}
}
