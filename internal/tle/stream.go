package tle

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseAll reads a Celestrak-style element stream: any mix of 3-line
// (name + two element lines) and bare 2-line entries, blank lines ignored.
// It returns every parsed set, or the first error with its line number.
func ParseAll(r io.Reader) ([]TLE, error) {
	sc := bufio.NewScanner(r)
	var out []TLE
	var pending []string // 0 or 1 name line, then element lines
	lineNo := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		t, err := Parse(pending...)
		if err != nil {
			return err
		}
		out = append(out, t)
		pending = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "1 "):
			// A line-1 must follow an optional name only.
			if len(pending) > 1 {
				return nil, fmt.Errorf("tle: line %d: unexpected element line 1", lineNo)
			}
			pending = append(pending, line)
		case strings.HasPrefix(line, "2 "):
			if len(pending) == 0 || !strings.HasPrefix(pending[len(pending)-1], "1 ") {
				return nil, fmt.Errorf("tle: line %d: element line 2 without line 1", lineNo)
			}
			pending = append(pending, line)
			if err := flush(); err != nil {
				return nil, fmt.Errorf("tle: line %d: %w", lineNo, err)
			}
		default:
			// A name line; any incomplete pending entry is an error.
			if len(pending) != 0 {
				return nil, fmt.Errorf("tle: line %d: name line inside element set", lineNo)
			}
			pending = append(pending, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("tle: truncated element set at end of stream")
	}
	return out, nil
}

// WriteAll formats element sets as a 3-line-per-entry stream.
func WriteAll(w io.Writer, sets []TLE) error {
	for _, t := range sets {
		l1, l2 := t.Format()
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("SAT-%05d", t.CatalogNumber)
		}
		if _, err := fmt.Fprintf(w, "%s\n%s\n%s\n", name, l1, l2); err != nil {
			return err
		}
	}
	return nil
}
