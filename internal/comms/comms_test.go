package comms

import (
	"math"
	"testing"
)

func TestLinkValidate(t *testing.T) {
	if err := PaperCrosslink().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperDownlink().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Link{RateBps: 0}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (Link{RateBps: 1, ContactSPerOrbit: -1}).Validate(); err == nil {
		t.Error("negative contact accepted")
	}
}

func TestTxTime(t *testing.T) {
	l := PaperCrosslink()
	if got := l.TxTimeS(0.4e6); math.Abs(got-1) > 1e-12 {
		t.Errorf("tx time = %v, want 1 s", got)
	}
	if l.TxTimeS(0) != 0 {
		t.Error("zero bytes should take zero time")
	}
}

func TestScheduleMessageUnder2KB(t *testing.T) {
	// §5.3: each schedule result is under 2 KB.
	for _, n := range []int{0, 1, 10, 50, 80, 1000} {
		if b := ScheduleMessageBytes(n); b > 2048 {
			t.Errorf("schedule of %d captures = %v bytes", n, b)
		}
	}
	if ScheduleMessageBytes(10) <= ScheduleMessageBytes(1) {
		t.Error("message size should grow with captures")
	}
}

func TestCrosslinkVolumeNegligible(t *testing.T) {
	// §5.3: ~400 schedules/orbit total under 1 MB, "easily accommodated by
	// an S-band radio's 0.4 MB/s".
	var acc Accounting
	l := PaperCrosslink()
	totalAir := 0.0
	for i := 0; i < 400; i++ {
		totalAir += acc.SendSchedule(l, 15)
	}
	if acc.CrosslinkBytes > 1e6 {
		t.Errorf("crosslink volume = %v bytes/orbit, want < 1 MB", acc.CrosslinkBytes)
	}
	if totalAir > 5 {
		t.Errorf("airtime = %v s, want a few seconds at most", totalAir)
	}
	if acc.Schedules != 400 {
		t.Errorf("schedules = %d", acc.Schedules)
	}
}

func TestDownlinkCapacityBounds(t *testing.T) {
	l := PaperDownlink()
	cap := l.CapacityPerOrbitBytes()
	if math.IsInf(cap, 1) {
		t.Fatal("downlink capacity should be finite")
	}
	// A 3333x3333 px 3-byte image is ~33 MB; the 6-minute contact fits a
	// bounded number of them.
	img := ImageBytes(3333*3333, 3)
	var acc Accounting
	n := 0
	for {
		if _, err := acc.DownlinkImage(l, img); err != nil {
			break
		}
		n++
		if n > 10000 {
			t.Fatal("capacity never exhausted")
		}
	}
	if n == 0 {
		t.Error("not even one image fits the downlink")
	}
	want := int(cap / img)
	if n != want {
		t.Errorf("images per orbit = %d, want %d", n, want)
	}
}

func TestCrosslinkAlwaysAvailable(t *testing.T) {
	if !math.IsInf(PaperCrosslink().CapacityPerOrbitBytes(), 1) {
		t.Error("crosslink should have unbounded per-orbit capacity")
	}
}

func TestImageBytes(t *testing.T) {
	if ImageBytes(0, 3) != 0 || ImageBytes(-5, 3) != 0 {
		t.Error("non-positive pixels should give 0")
	}
	if ImageBytes(100, 2) != 200 {
		t.Error("wrong image size")
	}
}
