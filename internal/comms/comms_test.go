package comms

import (
	"math"
	"testing"
)

func TestLinkValidate(t *testing.T) {
	if err := PaperCrosslink().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperDownlink().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Link{RateBps: 0}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (Link{RateBps: 1, ContactSPerOrbit: -1}).Validate(); err == nil {
		t.Error("negative contact accepted")
	}
	if err := (Link{RateBps: 1, AlwaysAvailable: true, ContactSPerOrbit: 60}).Validate(); err == nil {
		t.Error("always-available link with a contact window accepted")
	}
}

func TestContactlessLinkHasZeroCapacity(t *testing.T) {
	// A failed ground station is expressible: not always available, no
	// contact seconds. Its capacity must be zero, not +Inf.
	dead := Link{Name: "failed-gs", RateBps: 1.5e6}
	if err := dead.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := dead.CapacityPerOrbitBytes(); c != 0 {
		t.Errorf("contact-less link capacity = %v, want 0", c)
	}
	var acc Accounting
	if _, err := acc.DownlinkImage(dead, 1); err == nil {
		t.Error("downlink over a contact-less link accepted")
	}
}

func TestTxTime(t *testing.T) {
	l := PaperCrosslink()
	if got := l.TxTimeS(0.4e6); math.Abs(got-1) > 1e-12 {
		t.Errorf("tx time = %v, want 1 s", got)
	}
	if l.TxTimeS(0) != 0 {
		t.Error("zero bytes should take zero time")
	}
}

func TestScheduleMessageUnder2KB(t *testing.T) {
	// §5.3: each *message* is under 2 KB. A schedule that fits a single
	// message costs header + tuples; the single-message sizes must respect
	// the bound.
	for _, n := range []int{0, 1, 10, 50, 80, MaxCapturesPerScheduleMessage} {
		if b := ScheduleMessageBytes(n); b > MaxScheduleMessageBytes {
			t.Errorf("schedule of %d captures = %v bytes, above the per-message bound", n, b)
		}
	}
	if ScheduleMessageBytes(10) <= ScheduleMessageBytes(1) {
		t.Error("message size should grow with captures")
	}
}

func TestScheduleMessageSplitBoundary(t *testing.T) {
	// 82 captures fit one message; the 83rd forces a second message that
	// pays the 64-byte header again.
	if MaxCapturesPerScheduleMessage != 82 {
		t.Fatalf("captures per message = %d, want 82 at the paper's parameters",
			MaxCapturesPerScheduleMessage)
	}
	one := ScheduleMessageBytes(82)
	if want := float64(ScheduleHeaderBytes + 82*ScheduleCaptureBytes); one != want {
		t.Errorf("82 captures = %v bytes, want %v", one, want)
	}
	two := ScheduleMessageBytes(83)
	if want := float64(2*ScheduleHeaderBytes + 83*ScheduleCaptureBytes); two != want {
		t.Errorf("83 captures = %v bytes, want %v", two, want)
	}
	if two-one != ScheduleHeaderBytes+ScheduleCaptureBytes {
		t.Errorf("crossing the boundary cost %v bytes, want tuple+header %d",
			two-one, ScheduleHeaderBytes+ScheduleCaptureBytes)
	}
}

func TestScheduleMessageLargeScheduleNotClamped(t *testing.T) {
	// A 200-capture schedule is three messages: 3 headers + 200 tuples --
	// far above the old silent 2048-byte clamp.
	got := ScheduleMessageBytes(200)
	if want := float64(3*ScheduleHeaderBytes + 200*ScheduleCaptureBytes); got != want {
		t.Errorf("200 captures = %v bytes, want %v", got, want)
	}
	if got <= MaxScheduleMessageBytes {
		t.Errorf("200 captures = %v bytes, must exceed one message bound", got)
	}
	// Accounting counts the split messages.
	var acc Accounting
	acc.SendSchedule(PaperCrosslink(), 200)
	if acc.Schedules != 1 || acc.Messages != 3 {
		t.Errorf("accounting = %d schedules / %d messages, want 1 / 3", acc.Schedules, acc.Messages)
	}
}

func TestCrosslinkVolumeNegligible(t *testing.T) {
	// §5.3: ~400 schedules/orbit total under 1 MB, "easily accommodated by
	// an S-band radio's 0.4 MB/s".
	var acc Accounting
	l := PaperCrosslink()
	totalAir := 0.0
	for i := 0; i < 400; i++ {
		totalAir += acc.SendSchedule(l, 15)
	}
	if acc.CrosslinkBytes > 1e6 {
		t.Errorf("crosslink volume = %v bytes/orbit, want < 1 MB", acc.CrosslinkBytes)
	}
	if totalAir > 5 {
		t.Errorf("airtime = %v s, want a few seconds at most", totalAir)
	}
	if acc.Schedules != 400 {
		t.Errorf("schedules = %d", acc.Schedules)
	}
}

func TestDownlinkCapacityBounds(t *testing.T) {
	l := PaperDownlink()
	cap := l.CapacityPerOrbitBytes()
	if math.IsInf(cap, 1) {
		t.Fatal("downlink capacity should be finite")
	}
	// A 3333x3333 px 3-byte image is ~33 MB; the 6-minute contact fits a
	// bounded number of them.
	img := ImageBytes(3333*3333, 3)
	var acc Accounting
	n := 0
	for {
		if _, err := acc.DownlinkImage(l, img); err != nil {
			break
		}
		n++
		if n > 10000 {
			t.Fatal("capacity never exhausted")
		}
	}
	if n == 0 {
		t.Error("not even one image fits the downlink")
	}
	want := int(cap / img)
	if n != want {
		t.Errorf("images per orbit = %d, want %d", n, want)
	}
}

func TestCrosslinkAlwaysAvailable(t *testing.T) {
	if !math.IsInf(PaperCrosslink().CapacityPerOrbitBytes(), 1) {
		t.Error("crosslink should have unbounded per-orbit capacity")
	}
}

func TestImageBytes(t *testing.T) {
	if ImageBytes(0, 3) != 0 || ImageBytes(-5, 3) != 0 {
		t.Error("non-positive pixels should give 0")
	}
	if ImageBytes(100, 2) != 200 {
		t.Error("wrong image size")
	}
}
