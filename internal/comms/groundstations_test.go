package comms

import (
	"math"
	"testing"
	"time"

	"eagleeye/internal/geo"
	"eagleeye/internal/orbit"
)

func paperProp(t *testing.T) *orbit.Propagator {
	t.Helper()
	p, err := orbit.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), 475e3, 97.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHorizonRadius(t *testing.T) {
	// At 475 km and 10 deg elevation, the visibility circle is ~1500 km in
	// ground radius; at 0 deg it grows toward ~2440 km.
	r10 := horizonRadiusM(475e3, 10)
	if r10 < 1200e3 || r10 > 1800e3 {
		t.Errorf("radius @10deg = %v", r10)
	}
	r0 := horizonRadiusM(475e3, 0)
	if r0 <= r10 {
		t.Errorf("radius should grow as elevation drops: %v vs %v", r0, r10)
	}
	if r0 < 2000e3 || r0 > 2800e3 {
		t.Errorf("radius @0deg = %v", r0)
	}
}

func TestContactWindowsPolarStation(t *testing.T) {
	// A high-latitude station sees a polar orbiter far more often than an
	// equatorial one -- that's why polar ground stations exist. (How many
	// of the orbits pass inside the visibility circle depends on the node
	// alignment; with a 5-degree mask at least a couple of 6 do.)
	p := paperProp(t)
	contacts, err := ContactWindows(p, []Station{
		{Name: "svalbard", Pos: geo.LatLon{Lat: 78.2, Lon: 15.4}, MinElevationDeg: 5},
	}, 6*p.PeriodSeconds())
	if err != nil {
		t.Fatal(err)
	}
	if len(contacts) < 2 {
		t.Fatalf("svalbard contacts = %d over 6 orbits, want >= 2", len(contacts))
	}
	for i, c := range contacts {
		if c.Duration() <= 0 || c.Duration() > 1000 {
			t.Errorf("contact %d duration = %v s", i, c.Duration())
		}
		if i > 0 && c.StartS < contacts[i-1].StartS {
			t.Error("contacts not sorted")
		}
	}
	// And strictly more than an equatorial station under the same mask.
	eq, err := ContactWindows(p, []Station{
		{Name: "equator", Pos: geo.LatLon{Lat: 0, Lon: 15.4}, MinElevationDeg: 5},
	}, 6*p.PeriodSeconds())
	if err != nil {
		t.Fatal(err)
	}
	if len(eq) >= len(contacts) {
		t.Errorf("equatorial station (%d contacts) not below polar (%d)", len(eq), len(contacts))
	}
}

func TestContactWindowsErrors(t *testing.T) {
	p := paperProp(t)
	if _, err := ContactWindows(p, nil, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestMergedContact(t *testing.T) {
	contacts := []Contact{
		{Station: "a", StartS: 0, EndS: 100},
		{Station: "b", StartS: 50, EndS: 150}, // overlaps a
		{Station: "c", StartS: 300, EndS: 350},
	}
	if got := MergedContactS(contacts); math.Abs(got-200) > 1e-9 {
		t.Errorf("merged = %v, want 200", got)
	}
	if MergedContactS(nil) != 0 {
		t.Error("empty merge should be 0")
	}
}

func TestContactPerOrbitMatchesPaperScale(t *testing.T) {
	// The commercial network should give the same order of magnitude as
	// the paper's 6 min/orbit assumption.
	p := paperProp(t)
	perOrbit, err := ContactSPerOrbit(p, CommercialNetwork(), 6*p.PeriodSeconds())
	if err != nil {
		t.Fatal(err)
	}
	if perOrbit < 120 || perOrbit > 1800 {
		t.Errorf("contact = %v s/orbit, want same order as the paper's 360 s", perOrbit)
	}
}

func TestCommercialNetworkValid(t *testing.T) {
	for _, st := range CommercialNetwork() {
		if !st.Pos.Valid() || st.Name == "" {
			t.Errorf("bad station %+v", st)
		}
	}
}
