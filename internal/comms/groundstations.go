package comms

import (
	"fmt"
	"math"
	"sort"

	"eagleeye/internal/geo"
	"eagleeye/internal/orbit"
)

// Ground-station network model: the paper assumes six minutes of ground
// contact per orbit (§5.3); this model derives contact time from actual
// station geometry instead, the way commoditized ground-segment providers
// (AWS Ground Station, Azure Orbital -- the paper's references [1, 21])
// price it. A satellite is in contact when a station sees it above a
// minimum elevation angle.

// Station is one ground-segment antenna site.
type Station struct {
	Name string
	Pos  geo.LatLon
	// MinElevationDeg is the lowest usable elevation; 0 means 10 degrees.
	MinElevationDeg float64
}

// CommercialNetwork returns a representative commodity ground-station
// network (AWS Ground Station-like site distribution).
func CommercialNetwork() []Station {
	return []Station{
		{Name: "oregon", Pos: geo.LatLon{Lat: 43.8, Lon: -120.6}},
		{Name: "ohio", Pos: geo.LatLon{Lat: 40.4, Lon: -82.8}},
		{Name: "ireland", Pos: geo.LatLon{Lat: 53.1, Lon: -7.9}},
		{Name: "stockholm", Pos: geo.LatLon{Lat: 59.3, Lon: 18.1}},
		{Name: "bahrain", Pos: geo.LatLon{Lat: 26.0, Lon: 50.5}},
		{Name: "seoul", Pos: geo.LatLon{Lat: 37.5, Lon: 127.0}},
		{Name: "sydney", Pos: geo.LatLon{Lat: -33.9, Lon: 151.2}},
		{Name: "capetown", Pos: geo.LatLon{Lat: -33.9, Lon: 18.4}},
		{Name: "punta-arenas", Pos: geo.LatLon{Lat: -53.0, Lon: -70.8}},
		{Name: "svalbard", Pos: geo.LatLon{Lat: 78.2, Lon: 15.4}},
	}
}

// horizonRadiusM returns how far (ground distance) a satellite at altM can
// be from a station and still appear above elevation elevDeg: the central
// angle lambda solving the spherical visibility triangle,
//
//	cos(lambda + elev') = Re/(Re+h) * cos(elev'),  elev' = elevation.
func horizonRadiusM(altM, elevDeg float64) float64 {
	re := geo.EarthMeanRadius
	elev := geo.Deg2Rad(elevDeg)
	lambda := math.Acos(re/(re+altM)*math.Cos(elev)) - elev
	return lambda * re
}

// Contact is one station pass.
type Contact struct {
	Station string
	StartS  float64
	EndS    float64
}

// Duration returns the contact length in seconds.
func (c Contact) Duration() float64 { return c.EndS - c.StartS }

// ContactWindows predicts every station contact for the satellite over
// [0, durS], sorted by start time. Overlapping contacts from different
// stations are reported separately (a satellite downlinks to one station
// at a time; see MergedContactS for the usable total).
func ContactWindows(p *orbit.Propagator, stations []Station, durS float64) ([]Contact, error) {
	if durS <= 0 {
		return nil, fmt.Errorf("comms: duration %v must be positive", durS)
	}
	var out []Contact
	for _, st := range stations {
		elev := st.MinElevationDeg
		if elev == 0 {
			elev = 10
		}
		radius := horizonRadiusM(p.AltitudeM(), elev)
		for _, pass := range orbit.Passes(p, st.Pos, radius, durS) {
			out = append(out, Contact{Station: st.Name, StartS: pass.StartS, EndS: pass.EndS})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartS != out[b].StartS {
			return out[a].StartS < out[b].StartS
		}
		return out[a].Station < out[b].Station
	})
	return out, nil
}

// MergedContactS returns the total time with at least one station in view
// (overlaps counted once): the satellite's usable downlink seconds.
func MergedContactS(contacts []Contact) float64 {
	if len(contacts) == 0 {
		return 0
	}
	// Contacts are sorted by start; merge intervals.
	total := 0.0
	curStart, curEnd := contacts[0].StartS, contacts[0].EndS
	for _, c := range contacts[1:] {
		if c.StartS <= curEnd {
			if c.EndS > curEnd {
				curEnd = c.EndS
			}
			continue
		}
		total += curEnd - curStart
		curStart, curEnd = c.StartS, c.EndS
	}
	return total + (curEnd - curStart)
}

// ContactSPerOrbit estimates the average usable downlink seconds per orbit
// over the duration: the empirical counterpart of the paper's "six minutes
// each period" assumption.
func ContactSPerOrbit(p *orbit.Propagator, stations []Station, durS float64) (float64, error) {
	contacts, err := ContactWindows(p, stations, durS)
	if err != nil {
		return 0, err
	}
	orbits := durS / p.PeriodSeconds()
	if orbits < 1 {
		orbits = 1
	}
	return MergedContactS(contacts) / orbits, nil
}
