// Package comms models EagleEye's communication subsystem (§3.1, §5.3):
// the S-band crosslink a leader uses to deliver actuation schedules to its
// followers, and the ground downlink over which followers return captured
// high-resolution imagery. It accounts data volumes and link occupancy so
// the simulator and the energy model can verify the paper's claims that
// crosslink traffic is negligible (<1 MB/orbit against 0.4 MB/s) and that
// downlink capacity bounds how much imagery reaches Earth.
package comms

import (
	"fmt"
	"math"
)

// Link is a point-to-point radio link with a fixed data rate.
type Link struct {
	Name string
	// RateBps is the link throughput in bytes per second.
	RateBps float64
	// AlwaysAvailable marks a link with no contact windows -- co-orbital
	// crosslinks that never lose sight of their peer. Such links have
	// unbounded per-orbit capacity and must leave ContactSPerOrbit zero.
	AlwaysAvailable bool
	// ContactSPerOrbit is the usable contact time per orbit. Zero on a
	// link that is not AlwaysAvailable means genuinely no contact (a
	// failed or unreachable ground station): zero per-orbit capacity.
	ContactSPerOrbit float64
}

// PaperCrosslink returns the S-band inter-satellite link of §5.3:
// 0.4 MB/s, always available within a group.
func PaperCrosslink() Link {
	return Link{Name: "sband-crosslink", RateBps: 0.4e6, AlwaysAvailable: true}
}

// PaperDownlink returns the ground downlink: satellites see a ground
// station for six minutes per period (§5.3). The rate models a commodity
// S-band ground segment.
func PaperDownlink() Link {
	return Link{Name: "sband-downlink", RateBps: 1.5e6, ContactSPerOrbit: 6 * 60}
}

// Validate reports whether the link is usable.
func (l Link) Validate() error {
	if l.RateBps <= 0 {
		return fmt.Errorf("comms %q: rate %v must be positive", l.Name, l.RateBps)
	}
	if l.ContactSPerOrbit < 0 {
		return fmt.Errorf("comms %q: contact time %v must be non-negative", l.Name, l.ContactSPerOrbit)
	}
	if l.AlwaysAvailable && l.ContactSPerOrbit != 0 {
		return fmt.Errorf("comms %q: always-available link must not set contact time (got %v)",
			l.Name, l.ContactSPerOrbit)
	}
	return nil
}

// TxTimeS returns the time to transmit the given number of bytes.
func (l Link) TxTimeS(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / l.RateBps
}

// CapacityPerOrbitBytes returns how many bytes fit in one orbit's contact
// time: infinite for always-available links, zero for a link with no
// contact windows at all.
func (l Link) CapacityPerOrbitBytes() float64 {
	if l.AlwaysAvailable {
		return math.Inf(1)
	}
	return l.RateBps * l.ContactSPerOrbit
}

// Schedule message sizing (§5.3): each message carries a 64-byte header
// plus one 24-byte time+pointing tuple per capture, and no message may
// exceed the paper's 2 KB bound.
const (
	// ScheduleHeaderBytes is the fixed per-message framing overhead.
	ScheduleHeaderBytes = 64
	// ScheduleCaptureBytes is one 8-byte time + 2 x 8-byte pointing tuple.
	ScheduleCaptureBytes = 24
	// MaxScheduleMessageBytes is the §5.3 per-message crosslink bound.
	MaxScheduleMessageBytes = 2048
	// MaxCapturesPerScheduleMessage is how many tuples fit under the bound
	// alongside the header (82 at the paper's parameters).
	MaxCapturesPerScheduleMessage = (MaxScheduleMessageBytes - ScheduleHeaderBytes) / ScheduleCaptureBytes
)

// ScheduleMessageBytes returns the total crosslink traffic for a schedule
// of n captures. Schedules larger than one 2 KB message are split into
// ceil(n/82) messages, each paying the 64-byte header again -- the bound
// caps a message, not the schedule, so a 200-capture schedule costs three
// headers plus 200 tuples rather than silently clamping to 2 KB.
func ScheduleMessageBytes(nCaptures int) float64 {
	if nCaptures <= 0 {
		return ScheduleHeaderBytes // an empty schedule still announces itself
	}
	messages := (nCaptures + MaxCapturesPerScheduleMessage - 1) / MaxCapturesPerScheduleMessage
	return float64(messages*ScheduleHeaderBytes + nCaptures*ScheduleCaptureBytes)
}

// ImageBytes returns the size of one captured image in bytes given its
// pixel dimensions and bytes per pixel.
func ImageBytes(pixels int, bytesPerPixel float64) float64 {
	if pixels <= 0 {
		return 0
	}
	return float64(pixels) * bytesPerPixel
}

// Accounting accumulates traffic over an accounting window.
type Accounting struct {
	CrosslinkBytes float64
	DownlinkBytes  float64
	Schedules      int
	// Messages counts wire messages: a schedule above the 2 KB bound is
	// split and contributes several.
	Messages int
	Images   int
}

// SendSchedule records one schedule crosslink transmission (split into
// bound-sized messages as needed) and returns its airtime in seconds.
func (a *Accounting) SendSchedule(l Link, nCaptures int) float64 {
	b := ScheduleMessageBytes(nCaptures)
	a.CrosslinkBytes += b
	a.Schedules++
	if nCaptures <= 0 {
		a.Messages++
	} else {
		a.Messages += (nCaptures + MaxCapturesPerScheduleMessage - 1) / MaxCapturesPerScheduleMessage
	}
	return l.TxTimeS(b)
}

// DownlinkImage records one image downlink and returns its airtime, or an
// error if the orbit's remaining downlink capacity is exhausted.
func (a *Accounting) DownlinkImage(l Link, bytes float64) (float64, error) {
	if a.DownlinkBytes+bytes > l.CapacityPerOrbitBytes() {
		return 0, fmt.Errorf("comms: downlink capacity exceeded (%.0f + %.0f > %.0f bytes)",
			a.DownlinkBytes, bytes, l.CapacityPerOrbitBytes())
	}
	a.DownlinkBytes += bytes
	a.Images++
	return l.TxTimeS(bytes), nil
}
