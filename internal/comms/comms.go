// Package comms models EagleEye's communication subsystem (§3.1, §5.3):
// the S-band crosslink a leader uses to deliver actuation schedules to its
// followers, and the ground downlink over which followers return captured
// high-resolution imagery. It accounts data volumes and link occupancy so
// the simulator and the energy model can verify the paper's claims that
// crosslink traffic is negligible (<1 MB/orbit against 0.4 MB/s) and that
// downlink capacity bounds how much imagery reaches Earth.
package comms

import (
	"fmt"
	"math"
)

// Link is a point-to-point radio link with a fixed data rate.
type Link struct {
	Name string
	// RateBps is the link throughput in bytes per second.
	RateBps float64
	// ContactSPerOrbit is the usable contact time per orbit; 0 means
	// always available (co-orbital crosslinks).
	ContactSPerOrbit float64
}

// PaperCrosslink returns the S-band inter-satellite link of §5.3:
// 0.4 MB/s, always available within a group.
func PaperCrosslink() Link { return Link{Name: "sband-crosslink", RateBps: 0.4e6} }

// PaperDownlink returns the ground downlink: satellites see a ground
// station for six minutes per period (§5.3). The rate models a commodity
// S-band ground segment.
func PaperDownlink() Link {
	return Link{Name: "sband-downlink", RateBps: 1.5e6, ContactSPerOrbit: 6 * 60}
}

// Validate reports whether the link is usable.
func (l Link) Validate() error {
	if l.RateBps <= 0 {
		return fmt.Errorf("comms %q: rate %v must be positive", l.Name, l.RateBps)
	}
	if l.ContactSPerOrbit < 0 {
		return fmt.Errorf("comms %q: contact time %v must be non-negative", l.Name, l.ContactSPerOrbit)
	}
	return nil
}

// TxTimeS returns the time to transmit the given number of bytes.
func (l Link) TxTimeS(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / l.RateBps
}

// CapacityPerOrbitBytes returns how many bytes fit in one orbit's contact
// time (infinite for always-available links).
func (l Link) CapacityPerOrbitBytes() float64 {
	if l.ContactSPerOrbit == 0 {
		return math.Inf(1)
	}
	return l.RateBps * l.ContactSPerOrbit
}

// ScheduleMessageBytes returns the crosslink message size for a schedule
// of n captures: per §5.3 each schedule result is under 2 KB; we model a
// small header plus time+pointing tuples.
func ScheduleMessageBytes(nCaptures int) float64 {
	const (
		header     = 64
		perCapture = 24 // 8-byte time + 2 x 8-byte pointing direction
	)
	b := float64(header + perCapture*nCaptures)
	if b > 2048 {
		b = 2048 // the paper's upper bound; larger schedules are split
	}
	return b
}

// ImageBytes returns the size of one captured image in bytes given its
// pixel dimensions and bytes per pixel.
func ImageBytes(pixels int, bytesPerPixel float64) float64 {
	if pixels <= 0 {
		return 0
	}
	return float64(pixels) * bytesPerPixel
}

// Accounting accumulates traffic over an accounting window.
type Accounting struct {
	CrosslinkBytes float64
	DownlinkBytes  float64
	Schedules      int
	Images         int
}

// SendSchedule records one schedule crosslink transmission and returns its
// airtime in seconds.
func (a *Accounting) SendSchedule(l Link, nCaptures int) float64 {
	b := ScheduleMessageBytes(nCaptures)
	a.CrosslinkBytes += b
	a.Schedules++
	return l.TxTimeS(b)
}

// DownlinkImage records one image downlink and returns its airtime, or an
// error if the orbit's remaining downlink capacity is exhausted.
func (a *Accounting) DownlinkImage(l Link, bytes float64) (float64, error) {
	if a.DownlinkBytes+bytes > l.CapacityPerOrbitBytes() {
		return 0, fmt.Errorf("comms: downlink capacity exceeded (%.0f + %.0f > %.0f bytes)",
			a.DownlinkBytes, bytes, l.CapacityPerOrbitBytes())
	}
	a.DownlinkBytes += bytes
	a.Images++
	return l.TxTimeS(bytes), nil
}
