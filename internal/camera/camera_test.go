package camera

import (
	"math"
	"testing"

	"eagleeye/internal/geo"
)

func TestPaperCameras(t *testing.T) {
	lo, hi := PaperLowRes(), PaperHighRes()
	if err := lo.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := hi.Validate(); err != nil {
		t.Fatal(err)
	}
	// Swath ratio 10 (paper: "the ratio of low- and high-resolution camera
	// swath is 10"), GSD ratio 10.
	if r := lo.SwathM / hi.SwathM; r != 10 {
		t.Errorf("swath ratio = %v", r)
	}
	if r := lo.GSDM / hi.GSDM; r != 10 {
		t.Errorf("GSD ratio = %v", r)
	}
	// Same sensor pixel count: the coverage/resolution tension comes from a
	// fixed detector.
	if lo.PixelsAcross() != hi.PixelsAcross() {
		t.Errorf("pixel counts differ: %d vs %d", lo.PixelsAcross(), hi.PixelsAcross())
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{SwathM: 0, GSDM: 1},
		{SwathM: 1e3, GSDM: 0},
		{SwathM: 1e3, GSDM: 1, MaxOffNadirDeg: 95},
		{SwathM: 1e3, GSDM: 1, AlongTrackM: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestFootprint(t *testing.T) {
	m := PaperHighRes()
	c := geo.Point2{X: 1000, Y: 2000}
	f := m.Footprint(c)
	if f.Width() != 10e3 || f.Height() != 10e3 {
		t.Errorf("footprint dims = %v x %v", f.Width(), f.Height())
	}
	if f.Center() != c {
		t.Errorf("footprint center = %v", f.Center())
	}
	if !m.Covers(c, geo.Point2{X: 1000 + 4999, Y: 2000 - 4999}) {
		t.Error("in-footprint point not covered")
	}
	if m.Covers(c, geo.Point2{X: 1000 + 5001, Y: 2000}) {
		t.Error("out-of-footprint point covered")
	}
}

func TestRectangularFootprint(t *testing.T) {
	m := Model{Name: "strip", SwathM: 20e3, AlongTrackM: 5e3, GSDM: 10, MaxOffNadirDeg: 11}
	f := m.Footprint(geo.Point2{})
	if f.Width() != 20e3 || f.Height() != 5e3 {
		t.Errorf("rect footprint = %v x %v", f.Width(), f.Height())
	}
	if m.FootprintAlongM() != 5e3 {
		t.Errorf("along = %v", m.FootprintAlongM())
	}
	wantPx := int(20e3/10) * int(5e3/10)
	if m.FramePixels() != wantPx {
		t.Errorf("frame pixels = %d, want %d", m.FramePixels(), wantPx)
	}
}

func TestGroundReach(t *testing.T) {
	m := PaperHighRes()
	reach := m.GroundReachM(475e3)
	// 475 km * tan(11 deg) = 92.3 km.
	if math.Abs(reach-92.3e3) > 1e3 {
		t.Errorf("reach = %v", reach)
	}
}

func TestRequiredCount(t *testing.T) {
	lo := PaperLowRes()
	if n := lo.RequiredCountForContinuousCoverage(2000e3); n != 20 {
		t.Errorf("low-res count = %d, want 20", n)
	}
	hi := PaperHighRes()
	if n := hi.RequiredCountForContinuousCoverage(2000e3); n != 200 {
		t.Errorf("high-res count = %d, want 200", n)
	}
	if n := hi.RequiredCountForContinuousCoverage(0); n != 1 {
		t.Errorf("zero spacing count = %d", n)
	}
}

func TestCatalogueTradeoff(t *testing.T) {
	cat := Catalogue()
	if len(cat) != 9 {
		t.Fatalf("catalogue size = %d, want 9 (Fig. 4 left)", len(cat))
	}
	for _, m := range cat {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	// The catalogue should span the tradeoff: wider swath correlates with
	// coarser GSD (positive rank correlation).
	concordant, discordant := 0, 0
	for i := 0; i < len(cat); i++ {
		for j := i + 1; j < len(cat); j++ {
			ds := cat[i].SwathM - cat[j].SwathM
			dg := cat[i].GSDM - cat[j].GSDM
			if ds*dg > 0 {
				concordant++
			} else if ds*dg < 0 {
				discordant++
			}
		}
	}
	if concordant <= discordant {
		t.Errorf("no positive swath-GSD correlation: %d concordant vs %d discordant", concordant, discordant)
	}
}
