// Package camera models nanosatellite imaging payloads: the swath/GSD
// operating point, image footprints, off-nadir limits, and the catalogue of
// real cubesat cameras the paper contrasts in Fig. 4 (left).
//
// A camera's ground coverage and ground sample distance (GSD, meters per
// pixel) are intrinsically coupled through the sensor's pixel count: with a
// fixed detector, widening the swath proportionally coarsens the GSD. That
// coupling is the tension at the heart of EagleEye (§2.2).
package camera

import (
	"fmt"
	"math"

	"eagleeye/internal/geo"
)

// Model describes an imaging payload at its orbital operating point.
type Model struct {
	Name string
	// SwathM is the cross-track footprint width on the ground, meters.
	SwathM float64
	// AlongTrackM is the along-track footprint; square sensors have
	// AlongTrackM == SwathM. Zero means square.
	AlongTrackM float64
	// GSDM is the ground sample distance in meters per pixel.
	GSDM float64
	// MaxOffNadirDeg is the largest usable off-nadir pointing angle;
	// beyond it, captures are too distorted to use (§3.2, Fig. 6).
	MaxOffNadirDeg float64
}

// PaperLowRes returns the leader camera from §5.3: 100 km swath at 30 m GSD.
func PaperLowRes() Model {
	return Model{Name: "leader-lowres", SwathM: 100e3, GSDM: 30, MaxOffNadirDeg: 11}
}

// PaperHighRes returns the follower camera from §5.3: 10 km swath at 3 m GSD.
func PaperHighRes() Model {
	return Model{Name: "follower-highres", SwathM: 10e3, GSDM: 3, MaxOffNadirDeg: 11}
}

// Validate reports whether the camera parameters are usable.
func (m Model) Validate() error {
	switch {
	case m.SwathM <= 0:
		return fmt.Errorf("camera %q: swath %v must be positive", m.Name, m.SwathM)
	case m.AlongTrackM < 0:
		return fmt.Errorf("camera %q: along-track %v must be non-negative", m.Name, m.AlongTrackM)
	case m.GSDM <= 0:
		return fmt.Errorf("camera %q: GSD %v must be positive", m.Name, m.GSDM)
	case m.MaxOffNadirDeg < 0 || m.MaxOffNadirDeg >= 90:
		return fmt.Errorf("camera %q: max off-nadir %v out of [0,90)", m.Name, m.MaxOffNadirDeg)
	}
	return nil
}

// FootprintAlongM returns the along-track footprint, defaulting to square.
func (m Model) FootprintAlongM() float64 {
	if m.AlongTrackM > 0 {
		return m.AlongTrackM
	}
	return m.SwathM
}

// PixelsAcross returns the cross-track pixel count implied by swath and GSD.
func (m Model) PixelsAcross() int { return int(math.Round(m.SwathM / m.GSDM)) }

// FramePixels returns the total pixel count of one frame.
func (m Model) FramePixels() int {
	return m.PixelsAcross() * int(math.Round(m.FootprintAlongM()/m.GSDM))
}

// Footprint returns the ground rectangle imaged when the boresight ground
// intercept is at center, in frame-local coordinates (X cross-track, Y
// along-track). Off-nadir keystone distortion is neglected, consistent with
// the paper's small 11-degree maximum off-nadir angle.
func (m Model) Footprint(center geo.Point2) geo.Rect {
	return geo.NewRectCentered(center, m.SwathM, m.FootprintAlongM())
}

// Covers reports whether an image centered at center contains the ground
// point p (the paper's constraint C3).
func (m Model) Covers(center, p geo.Point2) bool { return m.Footprint(center).Contains(p) }

// GroundReachM returns how far from nadir the boresight intercept may be
// placed at altitude altM without exceeding the off-nadir limit:
// alt * tan(maxOffNadir). With the paper's parameters (475 km, 11 degrees)
// this is ~92 km, conveniently close to the leader's 100 km swath.
func (m Model) GroundReachM(altM float64) float64 {
	return altM * math.Tan(geo.Deg2Rad(m.MaxOffNadirDeg))
}

// RequiredCountForContinuousCoverage returns how many satellites carrying
// this camera are needed so that consecutive ground tracks (separated by
// trackSpacingM at the equator) leave no gap, i.e. ceil(spacing/swath).
func (m Model) RequiredCountForContinuousCoverage(trackSpacingM float64) int {
	if trackSpacingM <= 0 {
		return 1
	}
	return int(math.Ceil(trackSpacingM / m.SwathM))
}

// Catalogue lists real cubesat cameras spanning the swath/GSD tradeoff of
// Fig. 4 (left): Planet's fleet, Dragonfly Aerospace and Simera Sense
// imagers, at their published operating points (approximate, 475-500 km).
func Catalogue() []Model {
	return []Model{
		{Name: "Planet SuperDove (PSB.SD)", SwathM: 32.5e3, GSDM: 3.7, MaxOffNadirDeg: 11},
		{Name: "Planet SkySat", SwathM: 5.9e3, GSDM: 0.57, MaxOffNadirDeg: 25},
		{Name: "Planet RapidEye", SwathM: 77e3, GSDM: 6.5, MaxOffNadirDeg: 20},
		{Name: "Dragonfly Gecko", SwathM: 43e3, GSDM: 39, MaxOffNadirDeg: 11},
		{Name: "Dragonfly Chameleon", SwathM: 19.2e3, GSDM: 4.8, MaxOffNadirDeg: 11},
		{Name: "Dragonfly Caiman", SwathM: 10e3, GSDM: 0.7, MaxOffNadirDeg: 11},
		{Name: "Simera MultiScape100", SwathM: 19.4e3, GSDM: 4.75, MaxOffNadirDeg: 11},
		{Name: "Simera MultiScape200", SwathM: 9.7e3, GSDM: 2.4, MaxOffNadirDeg: 11},
		{Name: "Simera TriScape50", SwathM: 28e3, GSDM: 7, MaxOffNadirDeg: 11},
	}
}
