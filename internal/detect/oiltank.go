package detect

import "math"

// Oil-tank volume estimation (§2.2, Fig. 3) is the paper's motivating
// example for why some analytics need high-resolution data: the task
// detects tanks (stage 1) and then estimates fill level from the shadow on
// the floating lid (stage 2). Stage 1 works even at coarse GSD; stage 2's
// error grows quickly with GSD because the shadow is only a few meters
// wide. The constants below reproduce the Fig. 3 curves' shape for the
// paper's external-diameter ~40 m tanks and 0.7-11.5 m/px sweep.

const (
	oilTankDiameterM   = 40.0 // typical large floating-roof tank
	oilTankShadowM     = 12.0 // shadow extent measured for fill estimation
	oilTankDetectFloor = 3.0  // pixels across needed for reliable detection
)

// OilTankDetectionAccuracy returns stage-1 detection accuracy (fraction) at
// the given GSD. Detection stays near-perfect while the tank spans several
// pixels and degrades once it shrinks toward the detector floor.
func OilTankDetectionAccuracy(gsdM float64) float64 {
	if gsdM <= 0 {
		return 1
	}
	pixelsAcross := oilTankDiameterM / gsdM
	if pixelsAcross >= oilTankDetectFloor {
		// Mild degradation with coarsening resolution, capped near 1.
		acc := 0.99 - 0.002*(gsdM-0.7)
		if acc > 1 {
			acc = 1
		}
		if acc < 0.9 {
			acc = 0.9
		}
		return acc
	}
	// Below the floor, accuracy falls off steeply.
	frac := pixelsAcross / oilTankDetectFloor
	return math.Max(0, 0.9*frac)
}

// OilTankVolumeErrorPct returns the stage-2 volume estimation error (in
// percent) at the given GSD for percentile p (0.5 and 0.9 reproduce the
// paper's 50th/90th curves). The shadow-width measurement is quantized at
// one GSD, so relative error scales as GSD/shadow width.
func OilTankVolumeErrorPct(gsdM float64, p float64) float64 {
	if gsdM <= 0 {
		return 0
	}
	base := gsdM / oilTankShadowM * 100
	switch {
	case p >= 0.9:
		return math.Min(100, 0.9*base)
	case p >= 0.5:
		return math.Min(100, 0.35*base)
	default:
		return math.Min(100, 0.2*base)
	}
}

// OilTankVolumeAccurate reports whether a volume estimate at the GSD is
// accurate enough for analysts (<= 10% median error): this is what makes
// the follower's 3 m GSD usable and the leader's 30 m GSD not.
func OilTankVolumeAccurate(gsdM float64) bool {
	return OilTankVolumeErrorPct(gsdM, 0.5) <= 10
}
