package detect

import "testing"

func TestChooseTilingPrefersSmallestFeasible(t *testing.T) {
	tl, ft, err := ChooseTiling(YoloN(), 3330, nil, TilingBudget{DeadlineS: 13.7})
	if err != nil {
		t.Fatal(err)
	}
	// yolo_n at 200 px tiles: 289 tiles x 14 ms = ~4 s < 13.7 s, feasible;
	// nothing smaller is offered by default.
	if tl.TilePx != 200 {
		t.Errorf("tile = %d, want 200", tl.TilePx)
	}
	if ft <= 0 || ft > 13.7 {
		t.Errorf("frame time = %v", ft)
	}
}

func TestChooseTilingRespectsDeadline(t *testing.T) {
	// yolo_x (118 ms/tile) with a tight deadline: small tiles infeasible.
	tl, _, err := ChooseTiling(YoloX(), 3330, []int{100, 333, 1000}, TilingBudget{DeadlineS: 13.7})
	if err != nil {
		t.Fatal(err)
	}
	if tl.TilePx != 333 {
		t.Errorf("tile = %d, want 333 (100 px misses the deadline)", tl.TilePx)
	}
}

func TestChooseTilingRespectsEnergy(t *testing.T) {
	// With a harvest-limited energy budget, the fine tilings drop out even
	// when the deadline allows them (Fig. 16's 4x case).
	budget := TilingBudget{
		DeadlineS:       13.7,
		EnergyPerOrbitJ: 40e3, // below the 2x-tiling compute demand
	}
	tl, _, err := ChooseTiling(YoloM(), 3330, []int{200, 333, 500, 1000}, budget)
	if err != nil {
		t.Fatal(err)
	}
	// yolo_m at 333 px = 100 tiles x 55 ms x 412 frames x 15 W = 34 kJ: fits.
	// 200 px = 289 tiles -> 98 kJ: does not.
	if tl.TilePx != 333 {
		t.Errorf("tile = %d, want 333", tl.TilePx)
	}
}

func TestChooseTilingNoFit(t *testing.T) {
	if _, _, err := ChooseTiling(YoloX(), 3330, []int{100}, TilingBudget{DeadlineS: 5}); err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestChooseTilingValidation(t *testing.T) {
	if _, _, err := ChooseTiling(Model{}, 3330, nil, TilingBudget{}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, _, err := ChooseTiling(YoloN(), 0, nil, TilingBudget{}); err == nil {
		t.Error("zero frame accepted")
	}
	// Zero/negative candidates are skipped, not crashed on.
	tl, _, err := ChooseTiling(YoloN(), 3330, []int{0, -5, 400}, TilingBudget{DeadlineS: 13.7})
	if err != nil || tl.TilePx != 400 {
		t.Errorf("tile = %v err = %v", tl.TilePx, err)
	}
}
