package detect

import (
	"math"
	"math/rand"
	"testing"

	"eagleeye/internal/geo"
)

func TestCatalogueLatenciesMatchFig13(t *testing.T) {
	want := map[string]float64{
		"yolo_n": 1.4, "yolo_s": 2.6, "yolo_m": 5.5, "yolo_l": 8.6, "yolo_x": 11.8,
	}
	tiling := PaperTiling()
	for _, m := range Catalogue() {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		got := tiling.FrameTimeS(m)
		if math.Abs(got-want[m.Name]) > 0.01 {
			t.Errorf("%s frame time = %v, want %v", m.Name, got, want[m.Name])
		}
	}
}

func TestCatalogueOrderedByCost(t *testing.T) {
	cat := Catalogue()
	for i := 1; i < len(cat); i++ {
		if cat[i].PerTileS <= cat[i-1].PerTileS {
			t.Errorf("catalogue not ascending at %s", cat[i].Name)
		}
		if cat[i].Recall < cat[i-1].Recall {
			t.Errorf("bigger model %s has lower recall", cat[i].Name)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{PerTileS: 0, Recall: 0.5, Precision: 0.5},
		{PerTileS: 1, Recall: 1.5, Precision: 0.5},
		{PerTileS: 1, Recall: 0.5, Precision: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTiling(t *testing.T) {
	tl := PaperTiling()
	if tl.Tiles() != DefaultTiles {
		t.Errorf("default tiles = %d, want %d", tl.Tiles(), DefaultTiles)
	}
	if (Tiling{FramePx: 3330, TilePx: 0}).Tiles() != 0 {
		t.Error("zero tile size should give 0 tiles")
	}
	// Smaller tiles -> more tiles -> longer frame time (Fig. 14b shape).
	prev := 0.0
	for _, px := range []int{1000, 800, 600, 400, 200, 100} {
		ft := (Tiling{FramePx: 3330, TilePx: px}).FrameTimeS(YoloN())
		if ft <= prev {
			t.Errorf("frame time not increasing as tiles shrink: %v at %dpx", ft, px)
		}
		prev = ft
	}
}

func TestTileFactor(t *testing.T) {
	base := TileFactor(1).Tiles()
	x2 := TileFactor(2).Tiles()
	x4 := TileFactor(4).Tiles()
	if x2 < int(1.8*float64(base)) || x2 > int(2.3*float64(base)) {
		t.Errorf("2x factor: %d tiles vs base %d", x2, base)
	}
	if x4 < int(3.6*float64(base)) || x4 > int(4.6*float64(base)) {
		t.Errorf("4x factor: %d tiles vs base %d", x4, base)
	}
	if TileFactor(0).Tiles() != base {
		t.Error("zero factor should return base tiling")
	}
}

func TestMeetsDeadline(t *testing.T) {
	// At the paper's ~13.7 s cadence every variant fits under default
	// tiling (even yolo_x at 11.8 s -- that is why the leader-follower
	// split tolerates big models, Fig. 13), but 4x tiling pushes all but
	// the smallest models past the deadline.
	for _, m := range Catalogue() {
		if !MeetsDeadline(m, PaperTiling(), 13.7) {
			t.Errorf("%s should meet the frame deadline under default tiling", m.Name)
		}
	}
	if MeetsDeadline(YoloM(), TileFactor(4), 13.7) {
		t.Error("yolo_m at 4x tiling should miss the frame deadline")
	}
}

func TestDetectRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := YoloN()
	frame := geo.NewRectCentered(geo.Point2{}, 100e3, 100e3)
	truth := make([]geo.Point2, 2000)
	for i := range truth {
		truth[i] = geo.Point2{X: rng.Float64()*90e3 - 45e3, Y: rng.Float64()*90e3 - 45e3}
	}
	dets := Detect(rng, m, truth, frame, 30)
	tp := 0
	for _, d := range dets {
		if d.TruthIndex >= 0 {
			tp++
		}
	}
	gotRecall := float64(tp) / float64(len(truth))
	if math.Abs(gotRecall-m.Recall) > 0.05 {
		t.Errorf("empirical recall = %v, want ~%v", gotRecall, m.Recall)
	}
	// Precision check.
	gotPrec := float64(tp) / float64(len(dets))
	if math.Abs(gotPrec-m.Precision) > 0.05 {
		t.Errorf("empirical precision = %v, want ~%v", gotPrec, m.Precision)
	}
	// Positional error bounded by ~GSD.
	for _, d := range dets {
		if d.TruthIndex < 0 {
			continue
		}
		if d.Pos.Dist(truth[d.TruthIndex]) > 30*math.Sqrt2+1e-9 {
			t.Errorf("jitter too large: %v", d.Pos.Dist(truth[d.TruthIndex]))
		}
	}
	// Confidences in (0, 1].
	for _, d := range dets {
		if d.Confidence <= 0 || d.Confidence > 1 {
			t.Errorf("confidence %v out of range", d.Confidence)
		}
	}
}

func TestDetectDeterministic(t *testing.T) {
	m := YoloS()
	frame := geo.NewRectCentered(geo.Point2{}, 100e3, 100e3)
	truth := []geo.Point2{{X: 1e3, Y: 2e3}, {X: -5e3, Y: 9e3}, {X: 20e3, Y: -3e3}}
	a := Detect(rand.New(rand.NewSource(9)), m, truth, frame, 30)
	b := Detect(rand.New(rand.NewSource(9)), m, truth, frame, 30)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("detection %d differs", i)
		}
	}
}

func TestDetectEmptyTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	frame := geo.NewRectCentered(geo.Point2{}, 100e3, 100e3)
	if dets := Detect(rng, YoloN(), nil, frame, 30); len(dets) != 0 {
		t.Errorf("detections on empty truth: %d", len(dets))
	}
}

func TestDetectPerfectModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Model{Name: "perfect", PerTileS: 0.01, Recall: 1, Precision: 1}
	frame := geo.NewRectCentered(geo.Point2{}, 100e3, 100e3)
	truth := []geo.Point2{{X: 0, Y: 0}, {X: 1e3, Y: 1e3}}
	dets := Detect(rng, m, truth, frame, 30)
	if len(dets) != 2 {
		t.Errorf("perfect model found %d of 2", len(dets))
	}
	for _, d := range dets {
		if d.TruthIndex < 0 {
			t.Error("perfect model produced a false positive")
		}
	}
}

func TestOilTankDetectionFlatThenFalls(t *testing.T) {
	// Fig. 3a: detection accuracy stays high across the paper's GSD range.
	for _, gsd := range []float64{0.7, 3, 5, 10} {
		if acc := OilTankDetectionAccuracy(gsd); acc < 0.9 {
			t.Errorf("detection accuracy at %v m/px = %v, want >= 0.9", gsd, acc)
		}
	}
	// Far beyond the range the tank is sub-pixel and detection collapses.
	if acc := OilTankDetectionAccuracy(40); acc > 0.5 {
		t.Errorf("accuracy at 40 m/px = %v, want collapse", acc)
	}
	if OilTankDetectionAccuracy(0) != 1 {
		t.Error("zero GSD should be perfect")
	}
}

func TestOilTankVolumeErrorGrowsWithGSD(t *testing.T) {
	// Fig. 3b: error grows with GSD, 90th percentile above 50th.
	prev50, prev90 := -1.0, -1.0
	for _, gsd := range []float64{0.7, 2, 5, 8, 11.5} {
		e50 := OilTankVolumeErrorPct(gsd, 0.5)
		e90 := OilTankVolumeErrorPct(gsd, 0.9)
		if e50 <= prev50 || e90 <= prev90 {
			t.Errorf("errors not increasing at %v m/px", gsd)
		}
		if e90 <= e50 {
			t.Errorf("90th percentile (%v) not above 50th (%v)", e90, e50)
		}
		prev50, prev90 = e50, e90
	}
	if OilTankVolumeErrorPct(1e6, 0.9) > 100 {
		t.Error("error should cap at 100%")
	}
}

func TestOilTankAccuracyThresholds(t *testing.T) {
	// The follower's 3 m/px yields accurate volumes; the leader's 30 m/px
	// does not - the core motivation of the mixed-resolution design.
	if !OilTankVolumeAccurate(3) {
		t.Error("3 m/px should be accurate")
	}
	if OilTankVolumeAccurate(30) {
		t.Error("30 m/px should be inaccurate")
	}
}
