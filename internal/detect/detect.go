// Package detect models the leader satellite's onboard target
// identification (§4.1): ML object detection over tiled low-resolution
// frames. The paper's prototype runs YOLOv8 variants on an NVIDIA Jetson
// AGX Orin (15 W mode); this package is the statistical equivalent. It
// reproduces the quantities every downstream component consumes:
//
//   - per-frame compute latency as a function of the model variant and the
//     frame tiling (Figs. 13 and 14b),
//   - detections with calibrated recall, precision and confidence (the
//     priority scores the scheduler maximizes; Fig. 15), and
//   - the two-stage oil-tank volume estimation accuracy versus GSD
//     characterization (Fig. 3).
package detect

import (
	"fmt"
	"math"
	"math/rand"

	"eagleeye/internal/geo"
)

// Model is an object-detection network at a deployed operating point.
type Model struct {
	Name string
	// PerTileS is the inference latency per tile on the leader's computer
	// (Jetson Orin, 15 W mode). Frame latency = tiles x PerTileS.
	PerTileS float64
	// Recall is the fraction of true targets detected.
	Recall float64
	// Precision is the fraction of detections that are true targets.
	Precision float64
	// MAP50 is the mean average precision at IoU 0.5, for reporting.
	MAP50 float64
}

// The YOLOv8 family at the per-frame latencies of Fig. 13 (numbers in
// parentheses there are seconds per low-resolution frame at the default
// 100-tile decomposition).
func yolo(name string, frameS, recall, precision, mAP float64) Model {
	return Model{Name: name, PerTileS: frameS / float64(DefaultTiles), Recall: recall, Precision: precision, MAP50: mAP}
}

// DefaultTiles is the default tile count per low-resolution frame: a
// 100 km / 30 m = 3333 px frame cut into 10 x 10 tiles of ~333 px, scaled
// to the network input (§4.1).
const DefaultTiles = 100

// YoloN returns the nano variant (1.4 s/frame in Fig. 13).
func YoloN() Model { return yolo("yolo_n", 1.4, 0.776, 0.85, 0.776) }

// YoloS returns the small variant (2.6 s/frame).
func YoloS() Model { return yolo("yolo_s", 2.6, 0.80, 0.87, 0.80) }

// YoloM returns the medium variant (5.5 s/frame).
func YoloM() Model { return yolo("yolo_m", 5.5, 0.83, 0.89, 0.83) }

// YoloL returns the large variant (8.6 s/frame).
func YoloL() Model { return yolo("yolo_l", 8.6, 0.85, 0.90, 0.85) }

// YoloX returns the extra-large variant (11.8 s/frame).
func YoloX() Model { return yolo("yolo_x", 11.8, 0.87, 0.91, 0.87) }

// Catalogue returns the variants in ascending compute cost.
func Catalogue() []Model { return []Model{YoloN(), YoloS(), YoloM(), YoloL(), YoloX()} }

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	switch {
	case m.PerTileS <= 0:
		return fmt.Errorf("detect %q: per-tile latency %v must be positive", m.Name, m.PerTileS)
	case m.Recall < 0 || m.Recall > 1:
		return fmt.Errorf("detect %q: recall %v out of [0,1]", m.Name, m.Recall)
	case m.Precision <= 0 || m.Precision > 1:
		return fmt.Errorf("detect %q: precision %v out of (0,1]", m.Name, m.Precision)
	}
	return nil
}

// Tiling describes how a frame is decomposed for inference (§4.1):
// the frame is cut into TilePx x TilePx tiles, each scaled to the model
// input size.
type Tiling struct {
	FramePx int // frame width/height in pixels (square frames)
	TilePx  int // tile edge in pixels
}

// PaperTiling returns the leader-camera frame (100 km at 30 m/px) with the
// default 333 px tiles.
func PaperTiling() Tiling { return Tiling{FramePx: 3330, TilePx: 333} }

// Tiles returns the number of tiles per frame.
func (t Tiling) Tiles() int {
	if t.TilePx <= 0 || t.FramePx <= 0 {
		return 0
	}
	across := (t.FramePx + t.TilePx - 1) / t.TilePx
	return across * across
}

// FrameTimeS returns the frame processing latency for the model under this
// tiling (Fig. 14b).
func (t Tiling) FrameTimeS(m Model) float64 { return float64(t.Tiles()) * m.PerTileS }

// TileFactor returns a tiling with k-times the default tile count (the
// "2x / 4x tiling" of the energy analysis, Fig. 16): tile edge shrinks by
// sqrt(k).
func TileFactor(k float64) Tiling {
	base := PaperTiling()
	if k <= 0 {
		return base
	}
	base.TilePx = int(float64(base.TilePx) / math.Sqrt(k))
	if base.TilePx < 1 {
		base.TilePx = 1
	}
	return base
}

// Detection is one model output: a geolocated box center with a confidence
// score. TruthIndex links a true positive to the ground-truth slice;
// false positives carry TruthIndex == -1.
type Detection struct {
	Pos        geo.Point2
	Confidence float64
	TruthIndex int
}

// Detect simulates inference over one frame: each ground-truth target is
// found with probability Recall (positional error up to one GSD), and false
// positives are added so that the expected precision matches the model. The
// rng drives all sampling, keeping experiments reproducible.
func Detect(rng *rand.Rand, m Model, truth []geo.Point2, frame geo.Rect, gsdM float64) []Detection {
	var out []Detection
	for i, p := range truth {
		if rng.Float64() > m.Recall {
			continue
		}
		jitter := geo.Point2{
			X: (rng.Float64()*2 - 1) * gsdM,
			Y: (rng.Float64()*2 - 1) * gsdM,
		}
		out = append(out, Detection{
			Pos:        p.Add(jitter),
			Confidence: 0.5 + 0.5*rng.Float64()*m.Recall,
			TruthIndex: i,
		})
	}
	// E[FP] = TP * (1 - precision) / precision.
	if m.Precision < 1 && len(out) > 0 {
		expFP := float64(len(out)) * (1 - m.Precision) / m.Precision
		nFP := int(expFP)
		if rng.Float64() < expFP-float64(nFP) {
			nFP++
		}
		for k := 0; k < nFP; k++ {
			out = append(out, Detection{
				Pos: geo.Point2{
					X: frame.Min.X + rng.Float64()*frame.Width(),
					Y: frame.Min.Y + rng.Float64()*frame.Height(),
				},
				Confidence: 0.5 + 0.3*rng.Float64(),
				TruthIndex: -1,
			})
		}
	}
	return out
}

// MeetsDeadline reports whether the model under the tiling finishes within
// the leader's frame cadence (the hard deadline of §3.2).
func MeetsDeadline(m Model, t Tiling, deadlineS float64) bool {
	return t.FrameTimeS(m) <= deadlineS
}
