package detect

import (
	"fmt"
	"math"
)

// Adaptive tiling selection (§4.1): "the total number of tiles per frame
// must not exceed the energy or time budget of the leader", and smaller
// tiles improve small-object accuracy. ChooseTiling picks the smallest
// tile size (most tiles, best small-object accuracy) that still satisfies
// both the frame deadline and the per-orbit compute-energy budget.

// TilingBudget states the leader's constraints for one operating point.
type TilingBudget struct {
	// DeadlineS is the frame cadence (hard per-frame deadline, §3.2).
	DeadlineS float64
	// EnergyPerOrbitJ is the compute energy available per orbit;
	// 0 disables the energy check.
	EnergyPerOrbitJ float64
	// FramesPerOrbit is how many frames the leader processes per orbit;
	// 0 means 412 (§5.3).
	FramesPerOrbit int
	// ComputeW is the computer's active power; 0 means 15 W.
	ComputeW float64
}

func (b TilingBudget) withDefaults() TilingBudget {
	if b.FramesPerOrbit == 0 {
		b.FramesPerOrbit = 412
	}
	if b.ComputeW == 0 {
		b.ComputeW = 15
	}
	return b
}

// ChooseTiling returns the smallest tile edge from candidates that meets
// the budget for the model, along with the implied frame time. An error
// reports that no candidate fits (the caller should fall back to a smaller
// model, per Kodan's accuracy-aware degradation).
func ChooseTiling(m Model, framePx int, candidates []int, budget TilingBudget) (Tiling, float64, error) {
	if err := m.Validate(); err != nil {
		return Tiling{}, 0, err
	}
	if framePx <= 0 {
		return Tiling{}, 0, fmt.Errorf("detect: frame %d px must be positive", framePx)
	}
	if len(candidates) == 0 {
		candidates = []int{200, 250, 333, 400, 500, 666, 1000}
	}
	budget = budget.withDefaults()

	best := Tiling{}
	bestTime := math.Inf(1)
	found := false
	for _, px := range candidates {
		if px <= 0 {
			continue
		}
		tl := Tiling{FramePx: framePx, TilePx: px}
		ft := tl.FrameTimeS(m)
		if budget.DeadlineS > 0 && ft > budget.DeadlineS {
			continue
		}
		if budget.EnergyPerOrbitJ > 0 {
			need := ft * float64(budget.FramesPerOrbit) * budget.ComputeW
			if need > budget.EnergyPerOrbitJ {
				continue
			}
		}
		// Prefer the smallest feasible tile (most tiles, best accuracy on
		// small objects); ties by shorter time.
		if !found || px < best.TilePx {
			best, bestTime, found = tl, ft, true
		}
	}
	if !found {
		return Tiling{}, 0, fmt.Errorf("detect: no tile size in %v fits deadline %.1fs / energy %.0fJ for %s",
			candidates, budget.DeadlineS, budget.EnergyPerOrbitJ, m.Name)
	}
	return best, bestTime, nil
}
