# Tier-1 gate: every PR must keep `make tier1` green. The race detector
# is part of the gate because the simulator runs constellation groups on
# a worker pool (sim.Config.Workers).

GO ?= go

.PHONY: build vet test race tier1 bench bench-solver figures

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

tier1: build vet race

bench:
	$(GO) test -bench=. -benchmem .

# Solver smoke benches: one iteration of every lp/mip/sched/cluster bench.
# CI runs this to catch solver-path regressions that compile and pass unit
# tests but crash or hang only on benchmark-sized instances.
bench-solver:
	$(GO) test -run=xxx -bench=. -benchmem -benchtime=1x \
		./internal/lp ./internal/mip ./internal/sched ./internal/cluster

figures:
	$(GO) run ./cmd/figures
