# Tier-1 gate: every PR must keep `make tier1` green. The race detector
# is part of the gate because the simulator runs constellation groups on
# a worker pool (sim.Config.Workers).

GO ?= go

.PHONY: build vet test race tier1 bench bench-solver bench-sim bench-sim-smoke figures

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

tier1: build vet race

bench:
	$(GO) test -bench=. -benchmem .

# Solver smoke benches: one iteration of every lp/mip/sched/cluster bench.
# CI runs this to catch solver-path regressions that compile and pass unit
# tests but crash or hang only on benchmark-sized instances.
bench-solver:
	$(GO) test -run=xxx -bench=. -benchmem -benchtime=1x \
		./internal/lp ./internal/mip ./internal/sched ./internal/cluster

# Frame-loop benchmark: measures a full simulator run (ns/op, B/op,
# allocs/op) and appends a machine-readable point to BENCH_sim.json.
bench-sim:
	$(GO) run ./cmd/benchsim -out BENCH_sim.json

# One-iteration benchsim pass for CI: catches frame-loop regressions that
# only show up at benchmark scale, without CI timing noise mattering.
bench-sim-smoke:
	$(GO) run ./cmd/benchsim -iters 1

figures:
	$(GO) run ./cmd/figures
