# Tier-1 gate: every PR must keep `make tier1` green. The race detector
# is part of the gate because the simulator runs constellation groups on
# a worker pool (sim.Config.Workers).

GO ?= go

.PHONY: build vet test race tier1 bench figures

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

tier1: build vet race

bench:
	$(GO) test -bench=. -benchmem .

figures:
	$(GO) run ./cmd/figures
