# Tier-1 gate: every PR must keep `make tier1` green. The race detector
# is part of the gate because the simulator runs constellation groups on
# a worker pool (sim.Config.Workers).

GO ?= go

.PHONY: build vet test race tier1 bench bench-solver bench-scale bench-scale-smoke bench-sim bench-sim-smoke bench-shard bench-shard-smoke bench-warm metrics-smoke serve-smoke longhorizon-smoke flight-smoke figures

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

tier1: build vet race

bench:
	$(GO) test -bench=. -benchmem .

# Solver smoke benches: one iteration of every lp/mip/sched/cluster bench.
# CI runs this to catch solver-path regressions that compile and pass unit
# tests but crash or hang only on benchmark-sized instances.
bench-solver:
	$(GO) test -run=xxx -bench=. -benchmem -benchtime=1x \
		./internal/lp ./internal/mip ./internal/sched ./internal/cluster

# LP scale harness: dense vs sparse simplex on generated sched/cover-
# shaped instances up to 20k+ variables, appending points to
# BENCH_lp.json. Each instance is also a differential check (both engines
# must agree to 1e-6). The full run's largest dense solve takes minutes
# by design -- that is the scale ceiling the sparse core removes.
bench-scale:
	$(GO) run ./cmd/benchlp -out BENCH_lp.json

# Quick differential pass over the small instances only, for CI.
bench-scale-smoke:
	$(GO) run ./cmd/benchlp -quick

# Frame-loop benchmark: measures a full simulator run (ns/op, B/op,
# allocs/op) and appends a machine-readable point to BENCH_sim.json.
bench-sim:
	$(GO) run ./cmd/benchsim -out BENCH_sim.json

# One-iteration benchsim pass for CI: catches frame-loop regressions that
# only show up at benchmark scale, without CI timing noise mattering.
bench-sim-smoke:
	$(GO) run ./cmd/benchsim -iters 1

# Sharded-frame sweep: single dense frames at 20k / 100k / 1M targets
# through the sharded pipeline, recording the shard count, load imbalance
# and the speedup over the unsharded single-shard baseline (skipped above
# 200k) into BENCH_sim.json.
bench-shard:
	$(GO) run ./cmd/benchsim -frame-sweep 20000,100000 -workers 4 -iters 3 -out BENCH_sim.json
	$(GO) run ./cmd/benchsim -frame-sweep 1000000 -workers 4 -out BENCH_sim.json

# CI shard smoke: the intra-frame determinism gate (a 4-worker executor
# must produce byte-identical results to the sequential one on a sharded
# 20k-target frame) under the race detector, plus one quick sweep point.
bench-shard-smoke:
	$(GO) test -race -count=1 -run 'TestShardedFrameWorkersIdentity|TestShardedSingleShardMatchesPlain' ./internal/core
	$(GO) run ./cmd/benchsim -frame-sweep 20000 -workers 4 -iters 1

# Cold-vs-warm A/B on the benchmark workload: prints the solver-load
# counters (B&B nodes, simplex iterations, warm-start pipeline hits) side
# by side so the temporal-coherence savings are visible at a glance.
# Counts are deterministic for the fixed seed, so the two lines are
# comparable run to run.
bench-warm:
	@$(GO) build -o /tmp/eagleeye-benchsim ./cmd/benchsim
	@echo "cold (-warm=false):"; \
	/tmp/eagleeye-benchsim -iters 1 -warm=false \
		| grep -o '"\(sched\|cluster\)_\(nodes\|iters\)":[0-9]*\|"warm_[a-z_]*":[0-9.]*\|"basis_reuses":[0-9]*' \
		| tr '\n' ' '; echo
	@echo "warm (default):"; \
	/tmp/eagleeye-benchsim -iters 1 \
		| grep -o '"\(sched\|cluster\)_\(nodes\|iters\)":[0-9]*\|"warm_[a-z_]*":[0-9.]*\|"basis_reuses":[0-9]*' \
		| tr '\n' ' '; echo

# Observability smoke: run a short instrumented simulation with the live
# endpoint up, scrape /metrics during the post-run hold, and assert the
# key series exist. Catches wiring rot (renamed series, dead endpoint)
# that unit tests on internal/obs alone would miss.
metrics-smoke:
	$(GO) build -o /tmp/eagleeye-smoke ./cmd/eagleeye
	/tmp/eagleeye-smoke -dataset ships -sats 2 -hours 1 \
		-metrics-addr 127.0.0.1:19090 -metrics-hold 5s & \
	EE_PID=$$!; \
	sleep 2; \
	for i in 1 2 3 4 5 6 7 8 9 10; do \
		curl -sf http://127.0.0.1:19090/metrics -o /tmp/eagleeye-metrics.txt && break; \
		sleep 1; \
	done; \
	wait $$EE_PID || exit 1; \
	for series in eagleeye_frames_total eagleeye_captures_total \
		eagleeye_stage_nanoseconds_total eagleeye_mip_solves_total \
		eagleeye_sim_progress eagleeye_stage_seconds_bucket \
		eagleeye_warmstart_attempts_total eagleeye_warmstart_accepted_total \
		eagleeye_warmstart_projections_total eagleeye_warmstart_basis_reuses_total; do \
		grep -q "^$$series" /tmp/eagleeye-metrics.txt \
			|| { echo "metrics-smoke: missing series $$series"; exit 1; }; \
	done; \
	echo "metrics-smoke: all key series present"

# Scheduling-service smoke, mirroring the PR 6 acceptance criteria at CI
# scale. Phase 1: boot eagleeyed, drive 100 concurrent sessions with
# loadgen -verify (zero drops, every result identical to a direct library
# run), and assert the eagleeyed_* series are live on /metrics before a
# clean SIGTERM drain. Phase 2: saturate a 1-worker/1-slot daemon and
# require 429 backpressure to have fired (clients retried and still
# completed every session).
serve-smoke:
	$(GO) build -o /tmp/eagleeyed ./cmd/eagleeyed
	$(GO) build -o /tmp/eagleeye-loadgen ./cmd/loadgen
	/tmp/eagleeyed -addr 127.0.0.1:19091 -workers 4 & \
	EED_PID=$$!; \
	sleep 1; \
	/tmp/eagleeye-loadgen -addr 127.0.0.1:19091 \
		-sessions 100 -concurrency 100 -hours 0.25 -verify || exit 1; \
	curl -sf http://127.0.0.1:19091/metrics -o /tmp/eagleeyed-metrics.txt || exit 1; \
	kill -TERM $$EED_PID; \
	wait $$EED_PID || exit 1; \
	for series in eagleeyed_sessions_created_total eagleeyed_sessions_active \
		eagleeyed_runs_total eagleeyed_run_seconds_bucket \
		eagleeyed_queue_depth eagleeyed_admission_rejects_total \
		eagleeyed_requests_total eagleeye_frames_total; do \
		grep -q "^$$series" /tmp/eagleeyed-metrics.txt \
			|| { echo "serve-smoke: missing series $$series"; exit 1; }; \
	done; \
	echo "serve-smoke: 100 verified concurrent sessions, server series live"
	/tmp/eagleeyed -addr 127.0.0.1:19092 -workers 1 -queue 1 & \
	EED_PID=$$!; \
	sleep 1; \
	/tmp/eagleeye-loadgen -addr 127.0.0.1:19092 \
		-sessions 6 -concurrency 6 -hours 24 > /tmp/eagleeyed-saturation.txt || \
		{ cat /tmp/eagleeyed-saturation.txt; exit 1; }; \
	cat /tmp/eagleeyed-saturation.txt; \
	curl -sf http://127.0.0.1:19092/metrics -o /tmp/eagleeyed-metrics2.txt || exit 1; \
	kill -TERM $$EED_PID; \
	wait $$EED_PID || exit 1; \
	grep -q '429-retries=[1-9]' /tmp/eagleeyed-saturation.txt \
		|| { echo "serve-smoke: saturation produced no 429 backpressure"; exit 1; }; \
	grep -Eq 'eagleeyed_admission_rejects_total\{reason="queue"\} [1-9]' /tmp/eagleeyed-metrics2.txt \
		|| { echo "serve-smoke: rejects{queue} did not move"; exit 1; }; \
	echo "serve-smoke: saturation produced 429 backpressure with zero drops"

# Long-horizon durability smoke, mirroring the PR 7 acceptance criteria.
# Phase 1: the week-long simulation (168 simulated hours with mid-week
# fault events) must complete with the live heap under a fixed ceiling --
# the test asserts it via runtime.MemStats, which catches any regression
# back to per-frame result state. Phase 2: kill-restore-verify for
# eagleeyed -- create a continuous session with a scheduled fault, step
# it partway, SIGTERM the daemon (spooling the session to
# -checkpoint-dir), restart on the same spool, finish the resumed
# session, and require its cumulative result to equal an uninterrupted
# run of the same scenario on every deterministic field.
longhorizon-smoke:
	$(GO) test -run TestLongHorizonMemoryBounded -count=1 ./internal/sim
	$(GO) build -o /tmp/eagleeyed ./cmd/eagleeyed
	rm -rf /tmp/eagleeye-spool; \
	SC='{"dataset":"ships","satellites":4,"duration_hours":2,"seed":7,"continuous":true,"events":[{"at_hours":0.5,"kind":"follower-fail"}]}'; \
	/tmp/eagleeyed -addr 127.0.0.1:19093 -checkpoint-dir /tmp/eagleeye-spool & \
	EED_PID=$$!; \
	sleep 1; \
	curl -sf -X POST -d "$$SC" http://127.0.0.1:19093/v1/sessions -o /dev/null || exit 1; \
	curl -sf -X POST -d '{"hours":0.6}' http://127.0.0.1:19093/v1/sessions/s1/step -o /dev/null || exit 1; \
	kill -TERM $$EED_PID; \
	wait $$EED_PID || exit 1; \
	test -f /tmp/eagleeye-spool/s1.ckpt \
		|| { echo "longhorizon-smoke: SIGTERM spooled nothing"; exit 1; }; \
	/tmp/eagleeyed -addr 127.0.0.1:19093 -checkpoint-dir /tmp/eagleeye-spool & \
	EED_PID=$$!; \
	sleep 1; \
	curl -sf -X POST -d '{"hours":0}' http://127.0.0.1:19093/v1/sessions/s1/step -o /tmp/ee-lh-resumed.json || exit 1; \
	curl -sf -X POST -d "$$SC" http://127.0.0.1:19093/v1/sessions -o /dev/null || exit 1; \
	curl -sf -X POST -d '{"hours":0}' http://127.0.0.1:19093/v1/sessions/s2/step -o /tmp/ee-lh-full.json || exit 1; \
	kill -TERM $$EED_PID; \
	wait $$EED_PID || exit 1; \
	for f in Frames Detections Captures HighResCaptured CoveragePct CrosslinkKB EventsApplied SatsFailed; do \
		a=$$(grep -o "\"$$f\":[^,}]*" /tmp/ee-lh-resumed.json | head -1); \
		b=$$(grep -o "\"$$f\":[^,}]*" /tmp/ee-lh-full.json | head -1); \
		{ [ -n "$$a" ] && [ "$$a" = "$$b" ]; } \
			|| { echo "longhorizon-smoke: $$f diverges after restore: $$a vs $$b"; exit 1; }; \
	done; \
	grep -q '"EventsApplied":1' /tmp/ee-lh-resumed.json \
		|| { echo "longhorizon-smoke: fault event not applied"; exit 1; }; \
	echo "longhorizon-smoke: kill-restore-verify passed (restored == uninterrupted)"

# Flight-recorder smoke: boot eagleeyed with span tracing on, force a
# deterministic request-deadline anomaly (a 1 ms request timeout against
# a real run), let the run finish in the background, then require the
# whole explain-any-request chain to hold: the 504's X-Request-ID appears
# in the structured log, in the session's /v1/sessions/{id}/flight dump,
# and in the /debug/flight aggregate, and eeinspect parses both dumps and
# finds at least one pinned anomaly.
flight-smoke:
	$(GO) build -o /tmp/eagleeyed ./cmd/eagleeyed
	$(GO) build -o /tmp/eeinspect ./cmd/eeinspect
	/tmp/eagleeyed -addr 127.0.0.1:19094 -workers 1 -request-timeout 50ms \
		2> /tmp/eagleeyed-flight.log & \
	EED_PID=$$!; \
	sleep 1; \
	curl -sf -X POST -d '{"dataset":"ships","satellites":4,"duration_hours":24,"seed":7}' \
		http://127.0.0.1:19094/v1/sessions -o /dev/null || exit 1; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -X POST \
		-H 'X-Request-ID: flight-smoke-req' \
		http://127.0.0.1:19094/v1/sessions/s1/run); \
	[ "$$code" = 504 ] || { echo "flight-smoke: expected 504, got $$code"; exit 1; }; \
	for i in $$(seq 1 100); do \
		curl -s http://127.0.0.1:19094/v1/sessions/s1 | grep -q '"runs":1' && break; \
		sleep 0.2; \
	done; \
	curl -sf http://127.0.0.1:19094/v1/sessions/s1/flight -o /tmp/ee-flight-s1.json || exit 1; \
	curl -sf http://127.0.0.1:19094/debug/flight -o /tmp/ee-flight-all.json || exit 1; \
	kill -TERM $$EED_PID; \
	wait $$EED_PID || exit 1; \
	grep -q '"request_id":"flight-smoke-req"' /tmp/eagleeyed-flight.log \
		|| { echo "flight-smoke: request ID missing from structured log"; exit 1; }; \
	grep -q '"status":504' /tmp/eagleeyed-flight.log \
		|| { echo "flight-smoke: 504 missing from structured log"; exit 1; }; \
	grep -qE '"request": *"flight-smoke-req"' /tmp/ee-flight-s1.json \
		|| { echo "flight-smoke: request ID missing from flight dump"; exit 1; }; \
	grep -q 'request-deadline' /tmp/ee-flight-s1.json \
		|| { echo "flight-smoke: no request-deadline anomaly in flight dump"; exit 1; }; \
	/tmp/eeinspect -require-anomaly /tmp/ee-flight-s1.json > /tmp/ee-flight-report.txt \
		|| { echo "flight-smoke: eeinspect found no pinned anomaly"; cat /tmp/ee-flight-report.txt; exit 1; }; \
	/tmp/eeinspect /tmp/ee-flight-all.json > /dev/null \
		|| { echo "flight-smoke: eeinspect rejects /debug/flight aggregate"; exit 1; }; \
	grep -q 'request-deadline' /tmp/ee-flight-report.txt \
		|| { echo "flight-smoke: anomaly missing from eeinspect report"; exit 1; }; \
	echo "flight-smoke: 504 request correlated across log, flight dump and eeinspect"

figures:
	$(GO) run ./cmd/figures
