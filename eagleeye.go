// Package eagleeye is a Go implementation of EagleEye, the
// mixed-resolution, leader-follower nanosatellite constellation design for
// high-coverage, high-resolution Earth sensing (Cheng, Denby, McCleary,
// Lucia -- ASPLOS 2024).
//
// An EagleEye constellation pairs wide-swath, low-resolution *leader*
// satellites that detect targets with onboard ML against narrow-swath,
// high-resolution *follower* satellites that the leader tasks through an
// actuation-aware ILP schedule. The package exposes three layers:
//
//   - Run: full constellation simulations over built-in or custom target
//     worlds, reproducing the paper's evaluation (see cmd/figures).
//   - Schedule / ClusterTargets: the onboard algorithms on their own, for
//     integrating into other mission simulators.
//   - Analysis helpers such as MaxLookaheadM (moving-target limits) and
//     CameraCatalogue (the swath/GSD tradeoff).
//
// See the examples/ directory for runnable walkthroughs and DESIGN.md for
// the system inventory.
package eagleeye

import (
	"fmt"
	"io"
	"strings"
	"time"

	"eagleeye/internal/adacs"
	"eagleeye/internal/camera"
	"eagleeye/internal/cluster"
	"eagleeye/internal/comms"
	"eagleeye/internal/constellation"
	"eagleeye/internal/core"
	"eagleeye/internal/dataset"
	"eagleeye/internal/detect"
	"eagleeye/internal/energy"
	"eagleeye/internal/geo"
	"eagleeye/internal/mip"
	"eagleeye/internal/obs"
	"eagleeye/internal/orbit"
	"eagleeye/internal/sched"
	"eagleeye/internal/sim"
)

// MetricsRegistry is the simulator's observability registry: named atomic
// counters, gauges and histograms with Prometheus text-format exposition
// (WritePrometheus), a JSON snapshot (WriteSummary), and typed read
// accessors (CounterValue, GaugeValue). Pass one via Config.Metrics to
// collect run metrics; see the README metrics table for the exported
// series. The alias makes the internal type usable by external callers.
type MetricsRegistry = obs.Registry

// MetricsServer is a live HTTP introspection endpoint (see ServeMetrics).
type MetricsServer = obs.Server

// NewMetricsRegistry returns an empty registry for Config.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// FlightRecorder keeps the recent and the anomalous frames of a run as
// span trees in bounded memory: a ring of recent frames, top-K retention
// by duration, and anomaly-triggered pinning (solver fallback,
// warm-start reject, dual-repair failure, refactorization alarm,
// deadline miss, fault event). Pass one via Config.Flight (or
// StepOptions.Flight) and dump it with WriteJSON after -- or during --
// the run to explain any slow frame after the fact.
type FlightRecorder = obs.FlightRecorder

// FlightConfig sizes a FlightRecorder's retention classes; the zero
// value takes the defaults (128-frame ring, top 16 by duration, 64
// pinned).
type FlightConfig = obs.FlightConfig

// NewFlightRecorder returns a recorder for Config.Flight.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder { return obs.NewFlightRecorder(cfg) }

// ServeMetrics binds addr (e.g. "127.0.0.1:9090", or ":0" for an
// ephemeral port -- the bound address is available via Addr) and serves
// /metrics (Prometheus text format), /summary (JSON), /debug/vars
// (expvar) and /debug/pprof until Close. Scraping reads only atomics, so
// a live endpoint never perturbs a running simulation. Passing a
// FlightRecorder additionally serves its dump on /debug/flight.
func ServeMetrics(addr string, reg *MetricsRegistry, flight ...*FlightRecorder) (*MetricsServer, error) {
	return obs.Serve(addr, reg, flight...)
}

// Organization names accepted by Config.Organization.
const (
	LowResOnly     = "low-res-only"
	HighResOnly    = "high-res-only"
	LeaderFollower = "leader-follower"
	MixCamera      = "mix-camera"
)

// Scheduler names accepted by Config.Scheduler.
const (
	SchedulerILP    = "ilp"
	SchedulerGreedy = "greedy"
	SchedulerABB    = "abb"
)

// Dataset names accepted by Config.Dataset (the paper's four workloads).
const (
	DatasetShips     = "ships"
	DatasetAirplanes = "airplanes"
	DatasetLakes166K = "lakes-166k"
	DatasetLakes1p4M = "lakes-1.4m"
	DatasetOilTanks  = "oiltanks"
)

// Config selects a constellation simulation. Zero fields take the paper's
// defaults (§5.3): leader-follower organization, one follower per group,
// ILP scheduling, YOLO-nano detection, 3 deg/s slew, 24 h.
type Config struct {
	// Organization is one of LowResOnly, HighResOnly, LeaderFollower,
	// MixCamera. Empty means LeaderFollower.
	Organization string
	// Satellites is the total satellite count. Zero means 2.
	Satellites int
	// FollowersPerGroup applies to LeaderFollower (default 1).
	FollowersPerGroup int
	// Dataset names a built-in workload; leave empty when Targets is set.
	Dataset string
	// Targets supplies a custom world instead of a built-in dataset.
	Targets []Target
	// MovingTargets marks the custom world as moving.
	MovingTargets bool
	// Scheduler is SchedulerILP (default), SchedulerGreedy or SchedulerABB.
	Scheduler string
	// Detector names a YOLO variant ("yolo_n".."yolo_x"); default yolo_n.
	Detector string
	// SlewRateDegS overrides the ADACS rate (default 3).
	SlewRateDegS float64
	// DurationHours is the simulated span (default 24).
	DurationHours float64
	// Seed fixes all randomness (default 1).
	Seed int64
	// NoClustering disables target clustering.
	NoClustering bool
	// GreedyClustering forces the greedy rectangle cover.
	GreedyClustering bool
	// DisableWarmStart turns off the cross-frame warm-start pipeline of
	// the default ILP scheduler and clusterer (per-leader solver state,
	// previous-schedule projection, LP basis reuse, incremental model
	// construction). For A/B measurement; the default (warm) is faster
	// and produces the same results.
	DisableWarmStart bool
	// RecallOverride in (0,1] overrides detector recall.
	RecallOverride float64
	// MixComputeDelayS sets the mix-camera compute latency (Fig. 13).
	MixComputeDelayS float64
	// OrbitPlanes spreads groups across this many orbital planes
	// (the §4.7 orbit-design extension; 0 or 1 keeps one plane).
	OrbitPlanes int
	// RecaptureDedup deprioritizes detections at already-captured
	// positions (the §4.7 recapture extension).
	RecaptureDedup bool
	// Events schedules mid-run fault injections (satellite failures,
	// leader re-elections) at simulated-time boundaries. Events are part
	// of the scenario: they are deterministic for any Workers value and
	// survive checkpoint/restore exactly.
	Events []FaultEvent
	// Continuous makes Session.Step advance one uninterrupted simulation
	// timeline (steppers, solver warm state and statistics carry across
	// steps) instead of running independent windows. Continuous sessions
	// support Checkpoint / RestoreSession mid-run. Ignored by Run, which
	// is always one continuous timeline.
	Continuous bool
	// Trace, when non-nil, receives one JSON line per processed leader
	// frame: what was in view, what was detected, what the schedule did.
	// Not serialized by Session.Checkpoint.
	Trace io.Writer `json:"-"`
	// Metrics, when non-nil, receives run metrics: event counters, stage
	// wall-time breakdowns, solver activity and progress gauges. Integer
	// event counters are deterministic across Workers; timing series are
	// machine-dependent. Serve it live with ServeMetrics or snapshot it
	// with WritePrometheus / WriteSummary after Run returns. Not
	// serialized by Session.Checkpoint.
	Metrics *MetricsRegistry `json:"-"`
	// Flight, when non-nil, records per-frame span trees into the flight
	// recorder (see FlightRecorder). Like Metrics it is a runtime
	// attachment: not serialized by Session.Checkpoint, and a nil
	// recorder leaves the frame loop byte-identical to an unrecorded
	// run.
	Flight *FlightRecorder `json:"-"`
	// Workers runs independent constellation groups (or strip satellites)
	// on this many goroutines: 0 means all CPUs, 1 sequential. Results
	// and traces are deterministic for any value at a fixed seed.
	Workers int
}

// Target is a ground target in a custom world.
type Target struct {
	Lat, Lon   float64 // degrees
	SpeedMS    float64 // 0 for static targets
	HeadingDeg float64
	Value      float64 // priority in (0,1]; 0 means 1.0
}

// Fault-event kinds accepted by FaultEvent.Kind.
const (
	// FaultFollowerFail removes one follower from its group (or retires
	// the addressed satellite in the strip baselines). A group whose
	// followers have all failed degrades to seen-only accounting.
	FaultFollowerFail = "follower-fail"
	// FaultLeaderFail fails a group's current leader; the first surviving
	// follower is re-elected in its place. With no survivor (or on a
	// mix-camera satellite) the group goes dark.
	FaultLeaderFail = "leader-fail"
)

// FaultEvent schedules one mid-run fault (Config.Events). The fault takes
// effect at the first frame boundary at or after AtHours.
type FaultEvent struct {
	// AtHours is the simulated time of the fault, in hours from run start.
	AtHours float64
	// Kind is FaultFollowerFail or FaultLeaderFail.
	Kind string
	// Group addresses the leader group (leader-follower, mix-camera) or
	// the satellite index (strip baselines).
	Group int
	// Follower addresses the failing follower within the group
	// (FaultFollowerFail on leader-follower organizations only).
	Follower int
}

// Result summarizes a simulation.
type Result struct {
	Organization string
	Dataset      string
	Satellites   int

	// CoveragePct is the percentage of targets captured at high
	// resolution (Low-Res-Only reports low-resolution visibility, which
	// the paper plots as the physical ceiling).
	CoveragePct float64
	// LowResSeenPct is the fraction of targets any leader saw.
	LowResSeenPct float64

	TotalTargets    int
	HighResCaptured int
	Frames          int
	Detections      int
	Captures        int

	// SchedulerMeanMS / SchedulerMaxMS report per-frame scheduling time.
	SchedulerMeanMS float64
	SchedulerMaxMS  float64
	MissedDeadlines int

	// Solver cost totals across all scheduling and clustering ILP solves:
	// branch-and-bound nodes, simplex iterations, and milliseconds spent
	// inside the LP pivot loop.
	SolverNodes   int
	SolverIters   int
	SolverPivotMS float64

	// RecaptureSuppressed counts re-detections deprioritized by the
	// recapture extension.
	RecaptureSuppressed int

	// Fault-event accounting (Config.Events): events applied so far,
	// satellites lost to them, and leader re-elections performed.
	EventsApplied     int
	SatsFailed        int
	LeaderReelections int

	// CrosslinkKB is the total leader-to-follower schedule traffic in
	// kilobytes (wire encoding).
	CrosslinkKB float64
	// DownlinkableFraction is the share of captured imagery the followers'
	// ground contacts can return to Earth.
	DownlinkableFraction float64

	// LeaderEnergyUtilization is per-orbit consumption over harvest.
	LeaderEnergyUtilization   float64
	FollowerEnergyUtilization float64
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	simCfg, err := toSimConfig(cfg)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(simCfg)
	if err != nil {
		return nil, err
	}
	return resultFromSim(r, simCfg.Constellation.Satellites), nil
}

// resultFromSim converts the simulator's result to the facade shape.
func resultFromSim(r *sim.Result, satellites int) *Result {
	out := &Result{
		Organization:         r.Kind,
		Dataset:              r.App,
		Satellites:           satellites,
		CoveragePct:          r.CoveragePct(),
		LowResSeenPct:        r.LowResSeenPct(),
		TotalTargets:         r.TotalTargets,
		HighResCaptured:      r.HighResCaptured,
		Frames:               r.Frames,
		Detections:           r.Detections,
		Captures:             r.Captures,
		MissedDeadlines:      r.MissedDeadline,
		RecaptureSuppressed:  r.RecaptureSuppressed,
		EventsApplied:        r.EventsApplied,
		SatsFailed:           r.SatsFailed,
		LeaderReelections:    r.LeaderReelections,
		CrosslinkKB:          r.CrosslinkBytes / 1024,
		DownlinkableFraction: r.DownlinkableFraction,
	}
	if r.SchedSolves > 0 {
		out.SchedulerMeanMS = float64(r.SchedWallTotal.Microseconds()) / 1000 / float64(r.SchedSolves)
		out.SchedulerMaxMS = float64(r.SchedWallMax.Microseconds()) / 1000
	}
	out.SolverNodes = r.SchedNodes + r.ClusterNodes
	out.SolverIters = r.SchedIters + r.ClusterIters
	out.SolverPivotMS = float64((r.SchedPivotWall + r.ClusterPivotWall).Microseconds()) / 1000
	if r.LeaderBudget != nil {
		out.LeaderEnergyUtilization = r.LeaderBudget.Utilization()
	}
	if r.FollowerBudget != nil {
		out.FollowerEnergyUtilization = r.FollowerBudget.Utilization()
	}
	return out
}

func toSimConfig(cfg Config) (sim.Config, error) {
	var out sim.Config

	kind := constellation.LeaderFollower
	switch strings.ToLower(cfg.Organization) {
	case "", LeaderFollower:
	case LowResOnly:
		kind = constellation.LowResOnly
	case HighResOnly:
		kind = constellation.HighResOnly
	case MixCamera:
		kind = constellation.MixCamera
	default:
		return out, fmt.Errorf("eagleeye: unknown organization %q", cfg.Organization)
	}
	sats := cfg.Satellites
	if sats == 0 {
		sats = 2
	}
	out.Constellation = constellation.Config{
		Kind:              kind,
		Satellites:        sats,
		FollowersPerGroup: cfg.FollowersPerGroup,
		Planes:            cfg.OrbitPlanes,
	}

	switch {
	case cfg.Targets != nil:
		set := &dataset.Set{Name: "custom", Moving: cfg.MovingTargets}
		for i, t := range cfg.Targets {
			v := t.Value
			if v == 0 {
				v = 1
			}
			set.Targets = append(set.Targets, dataset.Target{
				ID:         i,
				Pos:        geo.LatLon{Lat: t.Lat, Lon: t.Lon}.Normalize(),
				SpeedMS:    t.SpeedMS,
				HeadingDeg: t.HeadingDeg,
				Value:      v,
			})
		}
		if err := set.Validate(); err != nil {
			return out, err
		}
		out.App = set
	case cfg.Dataset != "":
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		set, err := dataset.ByName(cfg.Dataset, seed)
		if err != nil {
			return out, err
		}
		out.App = set
	default:
		return out, fmt.Errorf("eagleeye: set Dataset or Targets")
	}

	switch strings.ToLower(cfg.Scheduler) {
	case "", SchedulerILP:
		// sim picks the bounded-ILP default.
	case SchedulerGreedy:
		out.Scheduler = sched.Greedy{}
	case SchedulerABB:
		out.Scheduler = sched.ABB{}
	default:
		return out, fmt.Errorf("eagleeye: unknown scheduler %q", cfg.Scheduler)
	}

	if cfg.Detector != "" {
		found := false
		for _, m := range detect.Catalogue() {
			if m.Name == strings.ToLower(cfg.Detector) {
				out.Detector = m
				found = true
				break
			}
		}
		if !found {
			return out, fmt.Errorf("eagleeye: unknown detector %q", cfg.Detector)
		}
	}

	for i, ev := range cfg.Events {
		var kind sim.EventKind
		switch strings.ToLower(ev.Kind) {
		case FaultFollowerFail:
			kind = sim.EventFollowerFail
		case FaultLeaderFail:
			kind = sim.EventLeaderFail
		default:
			return out, fmt.Errorf("eagleeye: event %d: unknown kind %q", i, ev.Kind)
		}
		out.Events = append(out.Events, sim.Event{
			AtS:      ev.AtHours * 3600,
			Kind:     kind,
			Group:    ev.Group,
			Follower: ev.Follower,
		})
	}

	out.NoClustering = cfg.NoClustering
	out.ClusterGreedy = cfg.GreedyClustering
	out.DisableWarmStart = cfg.DisableWarmStart
	out.RecaptureDedup = cfg.RecaptureDedup
	out.Trace = cfg.Trace
	out.Metrics = cfg.Metrics
	out.Flight = cfg.Flight
	out.Workers = cfg.Workers
	out.RecallOverride = cfg.RecallOverride
	out.SlewRateDegS = cfg.SlewRateDegS
	out.ComputeDelayS = cfg.MixComputeDelayS
	out.Seed = cfg.Seed
	if out.Seed == 0 {
		out.Seed = 1
	}
	if cfg.DurationHours > 0 {
		out.DurationS = cfg.DurationHours * 3600
	}
	return out, nil
}

// ---- Standalone onboard algorithms ----

// ScheduleRequest is a standalone actuation-aware scheduling instance in
// frame-local coordinates (meters; X cross-track, Y along-track; the
// followers advance along +Y).
type ScheduleRequest struct {
	// Targets to capture: positions and priorities.
	Targets []SchedTarget
	// FollowerOffsetsM places each follower's sub-point behind the frame
	// center (positive distances trail).
	FollowerOffsetsM []float64
	// AltitudeM, GroundSpeedMS, MaxOffNadirDeg, SlewRateDegS default to
	// the paper's parameters when zero.
	AltitudeM      float64
	GroundSpeedMS  float64
	MaxOffNadirDeg float64
	SlewRateDegS   float64
	// Algorithm is SchedulerILP (default), SchedulerGreedy or SchedulerABB.
	Algorithm string
}

// SchedTarget is one capture task for Schedule.
type SchedTarget struct {
	X, Y  float64 // frame-local meters
	Value float64 // priority; 0 means 1
}

// PlannedCapture is one scheduled image.
type PlannedCapture struct {
	TargetIndex int     // index into ScheduleRequest.Targets
	Follower    int     // which follower performs it
	TimeS       float64 // seconds from schedule start
}

// Schedule runs the actuation-aware scheduler on a standalone instance and
// returns the per-follower capture plan in execution order.
func Schedule(req ScheduleRequest) ([]PlannedCapture, error) {
	env := sched.Env{
		AltitudeM:      orDefault(req.AltitudeM, 475e3),
		GroundSpeedMS:  orDefault(req.GroundSpeedMS, 7300),
		MaxOffNadirDeg: orDefault(req.MaxOffNadirDeg, 11),
		Slew:           adacs.SlewModel{RateDegS: orDefault(req.SlewRateDegS, 3), OverheadS: 0.67},
	}
	prob := &sched.Problem{Env: env}
	for i, t := range req.Targets {
		v := t.Value
		if v == 0 {
			v = 1
		}
		prob.Targets = append(prob.Targets, sched.Target{
			ID: i, Pos: geo.Point2{X: t.X, Y: t.Y}, Value: v,
		})
	}
	offsets := req.FollowerOffsetsM
	if len(offsets) == 0 {
		offsets = []float64{100e3}
	}
	for _, off := range offsets {
		sub := geo.Point2{X: 0, Y: -off}
		prob.Followers = append(prob.Followers, sched.Follower{SubPoint: sub, Boresight: sub})
	}
	var solver sched.Scheduler
	switch strings.ToLower(req.Algorithm) {
	case "", SchedulerILP:
		solver = sched.ILP{MIP: mip.Options{TimeLimit: 2 * time.Second}}
	case SchedulerGreedy:
		solver = sched.Greedy{}
	case SchedulerABB:
		solver = sched.ABB{}
	default:
		return nil, fmt.Errorf("eagleeye: unknown scheduler %q", req.Algorithm)
	}
	s, err := solver.Schedule(prob)
	if err != nil {
		return nil, err
	}
	var out []PlannedCapture
	for fi, seq := range s.Captures {
		for _, c := range seq {
			out = append(out, PlannedCapture{TargetIndex: c.TargetID, Follower: fi, TimeS: c.Time})
		}
	}
	return out, nil
}

func orDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// Box is an axis-aligned rectangle in frame-local meters.
type Box struct {
	MinX, MinY, MaxX, MaxY float64
	// Members indexes the input points covered by this box.
	Members []int
}

// ClusterTargets covers the points (frame-local meters) with the minimum
// number of swathM x swathM high-resolution footprints (the §4.1 target
// clustering ILP). Each point belongs to exactly one box.
func ClusterTargets(xs, ys []float64, swathM float64) ([]Box, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("eagleeye: xs and ys lengths differ (%d vs %d)", len(xs), len(ys))
	}
	pts := make([]geo.Point2, len(xs))
	for i := range xs {
		pts[i] = geo.Point2{X: xs[i], Y: ys[i]}
	}
	cs, _, err := cluster.Cover(pts, swathM, swathM, cluster.Options{})
	if err != nil {
		return nil, err
	}
	out := make([]Box, len(cs))
	for i, c := range cs {
		out[i] = Box{
			MinX: c.Box.Min.X, MinY: c.Box.Min.Y,
			MaxX: c.Box.Max.X, MaxY: c.Box.Max.Y,
			Members: c.Members,
		}
	}
	return out, nil
}

// MaxLookaheadM returns the maximum leader-to-follower lookahead distance
// for a target moving at targetSpeedMS (§4.6, Fig. 10), using the paper's
// satellite speed, swath and slack when the remaining arguments are zero.
func MaxLookaheadM(targetSpeedMS, satSpeedMS, swathM, gamma float64) float64 {
	return core.MaxLookaheadM(
		orDefault(satSpeedMS, 7500),
		targetSpeedMS,
		orDefault(swathM, 10e3),
		orDefault(gamma, 0.1),
	)
}

// Camera describes an imaging payload operating point for CameraCatalogue.
type Camera struct {
	Name   string
	SwathM float64
	GSDM   float64
}

// CameraCatalogue returns the real cubesat cameras of Fig. 4 (left),
// spanning the swath/GSD tradeoff, plus the paper's leader and follower
// cameras.
func CameraCatalogue() []Camera {
	var out []Camera
	for _, m := range append(camera.Catalogue(), camera.PaperLowRes(), camera.PaperHighRes()) {
		out = append(out, Camera{Name: m.Name, SwathM: m.SwathM, GSDM: m.GSDM})
	}
	return out
}

// EnergyReport is the per-orbit energy accounting for one satellite role
// (the paper's Fig. 16 analysis). All energies in joules.
type EnergyReport struct {
	Role        string
	TileFactor  float64
	CameraJ     float64
	ADACSJ      float64
	ComputeJ    float64
	RadioJ      float64 // downlink + crosslink
	TotalJ      float64
	HarvestJ    float64
	Utilization float64
	Feasible    bool
}

// EnergyBudget computes the analytic per-orbit energy budget for a role
// ("low-res-baseline", "high-res-baseline", "leader", "follower") at the
// given frame tiling factor (1, 2, 4) and detector variant (default
// yolo_m, following the paper's energy analysis).
func EnergyBudget(role string, tileFactor float64, detector string) (EnergyReport, error) {
	var r energy.Role
	switch strings.ToLower(role) {
	case "low-res-baseline":
		r = energy.RoleLowResBaseline
	case "high-res-baseline":
		r = energy.RoleHighResBaseline
	case "leader":
		r = energy.RoleLeader
	case "follower":
		r = energy.RoleFollower
	default:
		return EnergyReport{}, fmt.Errorf("eagleeye: unknown role %q", role)
	}
	model := detect.YoloM()
	if detector != "" {
		found := false
		for _, m := range detect.Catalogue() {
			if m.Name == strings.ToLower(detector) {
				model = m
				found = true
				break
			}
		}
		if !found {
			return EnergyReport{}, fmt.Errorf("eagleeye: unknown detector %q", detector)
		}
	}
	if tileFactor <= 0 {
		tileFactor = 1
	}
	p := energy.Paper3U()
	frameS := detect.PaperTiling().FrameTimeS(model)
	b := energy.PerOrbitBudget(p, energy.PaperProfile(r, tileFactor, frameS))
	return EnergyReport{
		Role:        r.String(),
		TileFactor:  tileFactor,
		CameraJ:     b.CameraJ,
		ADACSJ:      b.ADACSJ,
		ComputeJ:    b.ComputeJ,
		RadioJ:      b.TXJ + b.CrosslinkJ,
		TotalJ:      b.TotalJ(),
		HarvestJ:    p.HarvestPerOrbitJ(),
		Utilization: b.Utilization(),
		Feasible:    b.Feasible(),
	}, nil
}

// PlanTiling selects the finest frame tiling (smallest tile edge, best
// small-object accuracy) that fits the leader's frame deadline and
// per-orbit compute-energy budget (§4.1). detector names a YOLO variant
// (default yolo_n); deadlineS 0 means the paper's 13.7 s frame cadence;
// energyJ 0 skips the energy check. It returns the chosen tile edge in
// pixels and the implied frame processing time.
func PlanTiling(detector string, deadlineS, energyJ float64) (tilePx int, frameTimeS float64, err error) {
	model := detect.YoloN()
	if detector != "" {
		found := false
		for _, m := range detect.Catalogue() {
			if m.Name == strings.ToLower(detector) {
				model = m
				found = true
				break
			}
		}
		if !found {
			return 0, 0, fmt.Errorf("eagleeye: unknown detector %q", detector)
		}
	}
	if deadlineS == 0 {
		deadlineS = 13.7
	}
	tl, ft, err := detect.ChooseTiling(model, detect.PaperTiling().FramePx, nil, detect.TilingBudget{
		DeadlineS:       deadlineS,
		EnergyPerOrbitJ: energyJ,
	})
	if err != nil {
		return 0, 0, err
	}
	return tl.TilePx, ft, nil
}

// GroundContactPerOrbitS predicts the usable downlink seconds per orbit
// for the paper's orbit over a representative commercial ground-station
// network -- the geometric counterpart of the paper's "six minutes each
// period" assumption (§5.3).
func GroundContactPerOrbitS() (float64, error) {
	prop, err := orbit.New(sim.DefaultEpoch, 475e3, 97.2, 0, 0)
	if err != nil {
		return 0, err
	}
	return comms.ContactSPerOrbit(prop, comms.CommercialNetwork(), 6*prop.PeriodSeconds())
}
