package eagleeye

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"eagleeye/internal/sim"
)

// Session is a long-lived scenario handle: validate a Config once, then
// advance the scenario in steps (or full runs) many times. It is the
// facade the multi-tenant server (cmd/eagleeyed) builds on, and is equally
// usable directly for windowed evaluations.
//
// Sessions come in two modes:
//
//   - Windowed (the default): each step simulates one window of the
//     scenario as an independent deterministic run. Step 0 uses the
//     configured seed exactly (so a session's first full-duration step is
//     byte-identical to Run on the same Config), and later steps derive
//     their seed from the step index, giving a reproducible sequence of
//     scenario windows.
//   - Continuous (Config.Continuous): steps advance ONE uninterrupted
//     simulation timeline -- orbital steppers, solver warm state, fault
//     events and statistics all carry across step boundaries, and each
//     step's Result is the cumulative run so far. A continuous session
//     that has stepped to its configured duration is complete; stepping it
//     further returns an error. Continuous sessions can be serialized
//     mid-run with Checkpoint and resumed with RestoreSession.
//
// A Session is not safe for concurrent use; callers that share one across
// goroutines (the server's session table) must serialize Step calls.
type Session struct {
	cfg    Config
	steps  int
	agg    SessionAggregate
	runner *sim.Runner      // continuous mode; nil until the first step
	met    *MetricsRegistry // registry bound at runner materialization
	flight *FlightRecorder  // recorder bound at runner materialization
	closed bool

	// pending holds a restored-but-not-yet-materialized simulator
	// snapshot: RestoreSession validates the header eagerly but defers
	// the (replaying) sim restore to the first Step, which is where the
	// trace writer and metrics registry become known.
	pending     []byte
	pendingNowH float64
}

// SessionAggregate accumulates deterministic counters across a session's
// steps. Timing-derived quantities (scheduler wall clock, deadline
// misses) are deliberately absent: they vary run to run and belong in the
// per-step Result or the metrics registry. In continuous mode the
// counters are the cumulative totals of the single timeline; in windowed
// mode they are sums over the independent windows.
type SessionAggregate struct {
	Steps           int
	SimulatedHours  float64
	Frames          int
	Detections      int
	Captures        int
	HighResCaptured int
	CrosslinkKB     float64
}

// NewSession validates cfg eagerly -- a server rejects a bad scenario at
// creation time, not on its first run -- and returns a handle with the
// paper defaults filled in.
func NewSession(cfg Config) (*Session, error) {
	if _, err := toSimConfig(cfg); err != nil {
		return nil, err
	}
	if cfg.DurationHours == 0 {
		cfg.DurationHours = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Session{cfg: cfg}, nil
}

// Config returns the session's validated configuration.
func (s *Session) Config() Config { return s.cfg }

// Steps returns how many steps have completed.
func (s *Session) Steps() int { return s.steps }

// Aggregate returns the counters accumulated over all completed steps.
func (s *Session) Aggregate() SessionAggregate { return s.agg }

// Done reports whether a continuous session has reached its configured
// duration. Windowed sessions never complete.
func (s *Session) Done() bool {
	if s.runner != nil {
		return s.runner.Done()
	}
	return s.pending != nil && s.pendingNowH >= s.cfg.DurationHours
}

// SimulatedHours returns a continuous session's position on its timeline
// (0 for windowed sessions, whose aggregate tracks window sums instead).
func (s *Session) SimulatedHours() float64 {
	if s.runner != nil {
		return s.runner.Now() / 3600
	}
	return s.pendingNowH
}

// Close releases the pooled solver state held by a continuous session's
// runner. Idempotent; the session cannot step afterwards. Windowed
// sessions hold no such state, but closing them still retires the handle.
func (s *Session) Close() {
	if s.runner != nil {
		s.runner.Close()
		s.runner = nil
	}
	s.closed = true
}

// StepOptions tunes one Session.Step call.
type StepOptions struct {
	// Hours is the simulated span of this step; 0 means the session's full
	// configured duration (in continuous mode: the remainder of it).
	// Negative or non-finite values are rejected.
	Hours float64
	// Trace, when non-nil, receives this step's frame trace (overriding
	// any writer in the session Config). In continuous mode the override
	// stays in effect for subsequent steps until replaced.
	Trace io.Writer
	// Metrics, when non-nil, receives this step's run metrics (overriding
	// any registry in the session Config). A continuous session binds its
	// registry on the first step; passing the same registry again later
	// is a no-op and passing a different one is rejected.
	Metrics *MetricsRegistry
	// Flight, when non-nil, records this step's frames into the flight
	// recorder (overriding any recorder in the session Config). Binding
	// rules match Metrics: a continuous session binds its recorder on
	// the first step and rejects a different one later. The session
	// stamps its step index onto the recorder before each step so dumped
	// frames correlate back to the request that ran them.
	Flight *FlightRecorder
}

// Step simulates the session's next scenario window and folds its
// deterministic counters into the aggregate. A failed step consumes no
// step index, so a retry reproduces the same window.
func (s *Session) Step(opt StepOptions) (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("eagleeye: session is closed")
	}
	// An unset Hours (zero) means "full duration"; anything else must be a
	// positive finite span. The old behavior -- treating negative or NaN
	// the same as unset -- turned caller bugs into silent full-length runs.
	if math.IsNaN(opt.Hours) || math.IsInf(opt.Hours, 0) || opt.Hours < 0 {
		return nil, fmt.Errorf("eagleeye: step hours must be a non-negative finite number, got %v", opt.Hours)
	}
	if s.cfg.Continuous {
		return s.stepContinuous(opt)
	}
	cfg := s.cfg
	if opt.Hours > 0 {
		cfg.DurationHours = opt.Hours
	}
	if opt.Trace != nil {
		cfg.Trace = opt.Trace
	}
	if opt.Metrics != nil {
		cfg.Metrics = opt.Metrics
	}
	if opt.Flight != nil {
		cfg.Flight = opt.Flight
	}
	if cfg.Flight != nil {
		cfg.Flight.SetStep(s.steps)
	}
	cfg.Seed = stepSeed(s.cfg.Seed, s.steps)
	r, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	s.steps++
	s.agg.Steps++
	s.agg.SimulatedHours += cfg.DurationHours
	s.agg.Frames += r.Frames
	s.agg.Detections += r.Detections
	s.agg.Captures += r.Captures
	s.agg.HighResCaptured += r.HighResCaptured
	s.agg.CrosslinkKB += r.CrosslinkKB
	return r, nil
}

// stepContinuous advances the single timeline by opt.Hours (or to the
// configured duration) and returns the cumulative Result.
func (s *Session) stepContinuous(opt StepOptions) (*Result, error) {
	if s.runner == nil {
		simCfg, err := toSimConfig(s.cfg)
		if err != nil {
			return nil, err
		}
		if opt.Metrics != nil {
			simCfg.Metrics = opt.Metrics
		}
		if opt.Flight != nil {
			simCfg.Flight = opt.Flight
		}
		var r *sim.Runner
		if s.pending != nil {
			// A restored session: rebuild the runner from the checkpoint's
			// snapshot now that this step's attachments are known.
			r, err = sim.RestoreRunner(simCfg, bytes.NewReader(s.pending))
			if err == nil {
				s.pending = nil
			}
		} else {
			r, err = sim.NewRunner(simCfg)
		}
		if err != nil {
			return nil, err
		}
		s.runner = r
		s.met = simCfg.Metrics
		s.flight = simCfg.Flight
	} else if opt.Metrics != nil && opt.Metrics != s.met {
		return nil, fmt.Errorf("eagleeye: a continuous session binds its metrics registry on the first step")
	} else if opt.Flight != nil && opt.Flight != s.flight {
		return nil, fmt.Errorf("eagleeye: a continuous session binds its flight recorder on the first step")
	}
	if s.flight != nil {
		s.flight.SetStep(s.steps)
	}
	if opt.Trace != nil {
		s.runner.SetTrace(opt.Trace)
	}
	if s.runner.Done() {
		return nil, fmt.Errorf("eagleeye: session already simulated its full %v h duration", s.cfg.DurationHours)
	}
	target := s.runner.Duration()
	if opt.Hours > 0 {
		target = s.runner.Now() + opt.Hours*3600
	}
	if err := s.runner.Advance(target); err != nil {
		return nil, err
	}
	simRes, err := s.runner.Result()
	if err != nil {
		return nil, err
	}
	res := resultFromSim(simRes, s.cfg.Satellites)
	if res.Satellites == 0 {
		res.Satellites = 2 // the facade default
	}
	s.steps++
	s.agg = SessionAggregate{
		Steps:           s.steps,
		SimulatedHours:  s.runner.Now() / 3600,
		Frames:          res.Frames,
		Detections:      res.Detections,
		Captures:        res.Captures,
		HighResCaptured: res.HighResCaptured,
		CrosslinkKB:     res.CrosslinkKB,
	}
	return res, nil
}

// Run advances the session by one full-duration step. On a fresh session
// the result is byte-identical to Run(cfg) on the same Config.
func (s *Session) Run() (*Result, error) { return s.Step(StepOptions{}) }

// stepSeed derives a deterministic per-step seed. Step 0 is the base seed
// itself, preserving result identity between a session's first step and a
// direct Run; later windows decorrelate via the same splitmix-style hash
// the simulator uses per frame.
func stepSeed(base int64, step int) int64 {
	if step == 0 {
		return base
	}
	h := uint64(base)*0x9E3779B97F4A7C15 + uint64(step)*0x94D049BB133111EB
	h ^= h >> 31
	if h&0x7FFFFFFFFFFFFFFF == 0 {
		h = 1 // Config treats seed 0 as "default"; never collide with it
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// ---- Checkpoint / restore ----

// Session checkpoints are a small framed container: an 8-byte magic, a
// JSON header (config, step count, aggregate), and -- for a continuous
// session that has started stepping -- the simulator's versioned binary
// snapshot. The JSON keeps the scenario human-inspectable (`tail -c +13 |
// head -c <len>`), while the simulator snapshot stays opaque and
// replay-verified; Trace and Metrics are runtime attachments and are
// deliberately not serialized (rebind them via StepOptions after restore).
const sessMagic = "EESESSV1"

// sessionHeader is the JSON part of a checkpoint.
type sessionHeader struct {
	Config    Config           `json:"config"`
	Steps     int              `json:"steps"`
	Aggregate SessionAggregate `json:"aggregate"`
	// NowHours is informational: the continuous position at checkpoint.
	NowHours float64 `json:"now_hours,omitempty"`
	// HasSnapshot marks a simulator snapshot following the header.
	HasSnapshot bool `json:"has_snapshot"`
}

// Checkpoint serializes the session to w so RestoreSession can resume it
// in another process. Windowed sessions serialize their cursor (step
// count and aggregate) only -- their steps are independent runs, so that
// is their entire state. Continuous sessions additionally embed the
// simulator snapshot; restore-then-step continues the timeline exactly
// where the checkpoint left it, byte-identical to never having stopped.
// A continuous session whose runner has failed refuses to checkpoint.
func (s *Session) Checkpoint(w io.Writer) error {
	if s.closed {
		return fmt.Errorf("eagleeye: session is closed")
	}
	hdr := sessionHeader{
		Config:      s.cfg,
		Steps:       s.steps,
		Aggregate:   s.agg,
		HasSnapshot: s.runner != nil || s.pending != nil,
	}
	var snap bytes.Buffer
	if s.runner != nil {
		hdr.NowHours = s.runner.Now() / 3600
		if err := s.runner.Snapshot(&snap); err != nil {
			return err
		}
	} else if s.pending != nil {
		// Restored but never stepped: the original snapshot is still the
		// exact state, so re-emit it verbatim.
		hdr.NowHours = s.pendingNowH
		snap.Write(s.pending)
	}
	hj, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("eagleeye: checkpoint header: %w", err)
	}
	if _, err := io.WriteString(w, sessMagic); err != nil {
		return fmt.Errorf("eagleeye: checkpoint: %w", err)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(hj)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("eagleeye: checkpoint: %w", err)
	}
	if _, err := w.Write(hj); err != nil {
		return fmt.Errorf("eagleeye: checkpoint: %w", err)
	}
	if hdr.HasSnapshot {
		var szBuf [8]byte
		binary.BigEndian.PutUint64(szBuf[:], uint64(snap.Len()))
		if _, err := w.Write(szBuf[:]); err != nil {
			return fmt.Errorf("eagleeye: checkpoint: %w", err)
		}
		if _, err := w.Write(snap.Bytes()); err != nil {
			return fmt.Errorf("eagleeye: checkpoint: %w", err)
		}
	}
	return nil
}

// maxCheckpointHeader bounds the JSON header read; a scenario with a
// large custom Targets world dominates its size.
const maxCheckpointHeader = 256 << 20

// RestoreSession rebuilds a session from a Checkpoint stream. The
// embedded configuration is re-validated as in NewSession and the framing
// checked eagerly; a continuous session's simulator snapshot is kept
// pending and restored (including the deterministic replay that rebuilds
// ephemeris phase) on the first Step, which is where the trace writer and
// metrics registry for the resumed timeline become known. Snapshot
// corruption therefore surfaces on that first Step rather than here.
func RestoreSession(src io.Reader) (*Session, error) {
	var magic [8]byte
	if _, err := io.ReadFull(src, magic[:]); err != nil {
		return nil, fmt.Errorf("eagleeye: checkpoint: %w", err)
	}
	if string(magic[:]) != sessMagic {
		return nil, fmt.Errorf("eagleeye: not a session checkpoint (bad magic)")
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(src, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("eagleeye: checkpoint: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxCheckpointHeader {
		return nil, fmt.Errorf("eagleeye: checkpoint header of %d bytes exceeds the %d byte bound", n, maxCheckpointHeader)
	}
	hj := make([]byte, n)
	if _, err := io.ReadFull(src, hj); err != nil {
		return nil, fmt.Errorf("eagleeye: checkpoint: %w", err)
	}
	var hdr sessionHeader
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return nil, fmt.Errorf("eagleeye: checkpoint header: %w", err)
	}
	s, err := NewSession(hdr.Config)
	if err != nil {
		return nil, err
	}
	s.steps = hdr.Steps
	s.agg = hdr.Aggregate
	if hdr.HasSnapshot {
		if !s.cfg.Continuous {
			return nil, fmt.Errorf("eagleeye: checkpoint has a simulator snapshot but is not continuous")
		}
		var szBuf [8]byte
		if _, err := io.ReadFull(src, szBuf[:]); err != nil {
			return nil, fmt.Errorf("eagleeye: checkpoint: %w", err)
		}
		sz := binary.BigEndian.Uint64(szBuf[:])
		if sz > maxCheckpointHeader {
			return nil, fmt.Errorf("eagleeye: checkpoint snapshot of %d bytes exceeds the %d byte bound", sz, maxCheckpointHeader)
		}
		snap := make([]byte, sz)
		if _, err := io.ReadFull(src, snap); err != nil {
			return nil, fmt.Errorf("eagleeye: checkpoint: %w", err)
		}
		s.pending = snap
		s.pendingNowH = hdr.NowHours
	}
	return s, nil
}
