package eagleeye

import "io"

// Session is a long-lived scenario handle: validate a Config once, then
// advance the scenario in steps (or full runs) many times. It is the
// facade the multi-tenant server (cmd/eagleeyed) builds on, and is equally
// usable directly for windowed evaluations.
//
// Each step simulates one window of the scenario as an independent
// deterministic run: step 0 uses the configured seed exactly (so a
// session's first full-duration step is byte-identical to Run on the same
// Config), and later steps derive their seed from the step index, giving
// a reproducible sequence of scenario windows. Steps do not carry orbital
// or solver state across the window boundary; cross-request solver-state
// reuse happens below this API, in the pooled warm-start arenas.
//
// A Session is not safe for concurrent use; callers that share one across
// goroutines (the server's session table) must serialize Step calls.
type Session struct {
	cfg   Config
	steps int
	agg   SessionAggregate
}

// SessionAggregate accumulates deterministic counters across a session's
// steps. Timing-derived quantities (scheduler wall clock, deadline
// misses) are deliberately absent: they vary run to run and belong in the
// per-step Result or the metrics registry.
type SessionAggregate struct {
	Steps           int
	SimulatedHours  float64
	Frames          int
	Detections      int
	Captures        int
	HighResCaptured int
	CrosslinkKB     float64
}

// NewSession validates cfg eagerly -- a server rejects a bad scenario at
// creation time, not on its first run -- and returns a handle with the
// paper defaults filled in.
func NewSession(cfg Config) (*Session, error) {
	if _, err := toSimConfig(cfg); err != nil {
		return nil, err
	}
	if cfg.DurationHours == 0 {
		cfg.DurationHours = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Session{cfg: cfg}, nil
}

// Config returns the session's validated configuration.
func (s *Session) Config() Config { return s.cfg }

// Steps returns how many steps have completed.
func (s *Session) Steps() int { return s.steps }

// Aggregate returns the counters accumulated over all completed steps.
func (s *Session) Aggregate() SessionAggregate { return s.agg }

// StepOptions tunes one Session.Step call.
type StepOptions struct {
	// Hours is the simulated span of this step; 0 means the session's full
	// configured duration.
	Hours float64
	// Trace, when non-nil, receives this step's frame trace (overriding
	// any writer in the session Config).
	Trace io.Writer
	// Metrics, when non-nil, receives this step's run metrics (overriding
	// any registry in the session Config).
	Metrics *MetricsRegistry
}

// Step simulates the session's next scenario window and folds its
// deterministic counters into the aggregate. A failed step consumes no
// step index, so a retry reproduces the same window.
func (s *Session) Step(opt StepOptions) (*Result, error) {
	cfg := s.cfg
	if opt.Hours > 0 {
		cfg.DurationHours = opt.Hours
	}
	if opt.Trace != nil {
		cfg.Trace = opt.Trace
	}
	if opt.Metrics != nil {
		cfg.Metrics = opt.Metrics
	}
	cfg.Seed = stepSeed(s.cfg.Seed, s.steps)
	r, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	s.steps++
	s.agg.Steps++
	s.agg.SimulatedHours += cfg.DurationHours
	s.agg.Frames += r.Frames
	s.agg.Detections += r.Detections
	s.agg.Captures += r.Captures
	s.agg.HighResCaptured += r.HighResCaptured
	s.agg.CrosslinkKB += r.CrosslinkKB
	return r, nil
}

// Run advances the session by one full-duration step. On a fresh session
// the result is byte-identical to Run(cfg) on the same Config.
func (s *Session) Run() (*Result, error) { return s.Step(StepOptions{}) }

// stepSeed derives a deterministic per-step seed. Step 0 is the base seed
// itself, preserving result identity between a session's first step and a
// direct Run; later windows decorrelate via the same splitmix-style hash
// the simulator uses per frame.
func stepSeed(base int64, step int) int64 {
	if step == 0 {
		return base
	}
	h := uint64(base)*0x9E3779B97F4A7C15 + uint64(step)*0x94D049BB133111EB
	h ^= h >> 31
	if h&0x7FFFFFFFFFFFFFFF == 0 {
		h = 1 // Config treats seed 0 as "default"; never collide with it
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}
