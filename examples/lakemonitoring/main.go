// Lake monitoring: the paper's high-target-density use case (§5.2).
// Hundreds of thousands of small lakes concentrate in lake districts, so
// single low-resolution frames can contain dozens of targets -- the regime
// where EagleEye's target clustering (§4.1) and multiple followers per
// group (§4.4) pay off. The example demonstrates both knobs, plus the
// standalone clustering API on one dense frame.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eagleeye"
)

func main() {
	// Standalone clustering: one dense frame's detections covered by
	// 10 km high-resolution footprints.
	rng := rand.New(rand.NewSource(3))
	var xs, ys []float64
	for i := 0; i < 40; i++ { // a lake district corner of the frame
		xs = append(xs, rng.Float64()*30e3-40e3)
		ys = append(ys, rng.Float64()*30e3)
	}
	boxes, err := eagleeye.ClusterTargets(xs, ys, 10e3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Target clustering: %d detected lakes -> %d high-res captures\n\n", len(xs), len(boxes))

	// Constellation knobs on the 166k-lake inventory.
	fmt.Println("Lake monitoring (166,588 lakes of 1-10 km2), 2-hour window, 12 satellites:")
	for _, followers := range []int{1, 2, 3} {
		r, err := eagleeye.Run(eagleeye.Config{
			Dataset:           eagleeye.DatasetLakes166K,
			Satellites:        12,
			FollowersPerGroup: followers,
			DurationHours:     2,
		})
		if err != nil {
			log.Fatal(err)
		}
		groups := 12 / (1 + followers)
		fmt.Printf("  %d follower(s) per group (%d groups): %5.2f%% coverage\n",
			followers, groups, r.CoveragePct)
	}

	fmt.Println()
	fmt.Println("Clustering ablation (2 satellites):")
	for _, no := range []bool{false, true} {
		r, err := eagleeye.Run(eagleeye.Config{
			Dataset:       eagleeye.DatasetLakes166K,
			Satellites:    2,
			DurationHours: 3,
			NoClustering:  no,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "with clustering"
		if no {
			label = "without clustering"
		}
		fmt.Printf("  %-20s %5.2f%% coverage (%d captures)\n", label, r.CoveragePct, r.Captures)
	}
}
