// Energy budget: the paper's Fig. 16 analysis as a design exercise. A
// constellation designer asks: how much frame tiling (ML work per frame)
// can the leader afford on harvested solar power, and are followers ever
// energy-bound? The answers drive the paper's guidance -- add solar panels
// to the leader, spend the follower budget on a faster ADACS.
package main

import (
	"fmt"
	"log"

	"eagleeye"
)

func main() {
	fmt.Println("Per-orbit energy budget, 3U cubesat, yolo_m detector (Fig. 16):")
	fmt.Printf("%-18s %6s %9s %9s %9s %9s %7s %9s\n",
		"role", "tiling", "camera(J)", "adacs(J)", "compute(J)", "radio(J)", "util", "feasible")
	for _, factor := range []float64{1, 2, 4} {
		for _, role := range []string{"low-res-baseline", "leader", "follower"} {
			r, err := eagleeye.EnergyBudget(role, factor, "yolo_m")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %6.0fx %9.0f %9.0f %9.0f %9.0f %7.2f %9v\n",
				r.Role, r.TileFactor, r.CameraJ, r.ADACSJ, r.ComputeJ, r.RadioJ,
				r.Utilization, r.Feasible)
		}
	}
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println(" - the leader is feasible up to ~2x tiling; 4x exceeds harvest,")
	fmt.Println("   so extra ML work needs extra solar panels;")
	fmt.Println(" - followers never come close to the budget: spend it on a")
	fmt.Println("   faster ADACS to capture more targets per pass;")
	fmt.Println(" - the leader undercuts the baselines because it crosslinks")
	fmt.Println("   2 KB schedules instead of downlinking imagery.")

	// Cross-check with a simulated constellation's measured utilization.
	sim, err := eagleeye.Run(eagleeye.Config{
		Dataset:       eagleeye.DatasetShips,
		Satellites:    2,
		DurationHours: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMeasured in simulation (ships, 6 h): leader util %.2f, follower util %.2f\n",
		sim.LeaderEnergyUtilization, sim.FollowerEnergyUtilization)
}
