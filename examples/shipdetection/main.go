// Ship detection: the paper's first use case (§5.2). A constellation
// watches the world's shipping lanes for illegal fishing and oil spills;
// the leader detects ships in 30 m/px imagery and tasks followers to
// capture them at 3 m/px. The example sweeps constellation size and
// compares EagleEye's ILP scheduler against the greedy baseline --
// a slice of the paper's Fig. 11a.
package main

import (
	"fmt"
	"log"

	"eagleeye"
)

func main() {
	fmt.Println("Ship detection (19,119 vessels on world shipping lanes), 6-hour window")
	fmt.Println()
	fmt.Printf("%10s  %14s  %14s  %14s\n", "satellites", "high-res-only", "eagleeye-ilp", "eagleeye-greedy")

	for _, sats := range []int{2, 4, 8} {
		base := eagleeye.Config{
			Dataset:       eagleeye.DatasetShips,
			Satellites:    sats,
			DurationHours: 6,
		}

		hrCfg := base
		hrCfg.Organization = eagleeye.HighResOnly
		hr, err := eagleeye.Run(hrCfg)
		if err != nil {
			log.Fatal(err)
		}

		ilp, err := eagleeye.Run(base)
		if err != nil {
			log.Fatal(err)
		}

		gCfg := base
		gCfg.Scheduler = eagleeye.SchedulerGreedy
		greedy, err := eagleeye.Run(gCfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%10d  %13.2f%%  %13.2f%%  %13.2f%%\n",
			sats, hr.CoveragePct, ilp.CoveragePct, greedy.CoveragePct)
	}

	fmt.Println()
	fmt.Println("EagleEye captures several times more ships at high resolution than")
	fmt.Println("a homogeneous high-res constellation of the same size; the ILP")
	fmt.Println("scheduler matches or beats the greedy baseline.")
}
