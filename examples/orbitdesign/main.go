// Orbit design: the §4.7 future-work extension. As a constellation grows
// within one orbital plane, satellites increasingly re-image the same
// ground tracks. Spreading leader-follower groups across several planes
// (evenly spaced ascending nodes) reduces the overlap -- this example
// sweeps the plane count at a fixed satellite budget and also shows the
// recapture extension suppressing duplicate work on a revisit-heavy world.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eagleeye"
)

func main() {
	fmt.Println("Orbital-plane sweep: 8 satellites (4 leader+follower groups),")
	fmt.Println("ship detection, 3-hour window:")
	for _, planes := range []int{1, 2, 4} {
		r, err := eagleeye.Run(eagleeye.Config{
			Dataset:       eagleeye.DatasetShips,
			Satellites:    8,
			OrbitPlanes:   planes,
			DurationHours: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d plane(s): %5.2f%% coverage\n", planes, r.CoveragePct)
	}
	fmt.Println()
	fmt.Println("Spreading ascending nodes multiplies early coverage: groups stop")
	fmt.Println("flying over each other's ground tracks.")
	fmt.Println()

	// Near-polar targets are revisited every few orbits, so the leader
	// keeps re-detecting ships it has already handed to a follower.
	rng := rand.New(rand.NewSource(9))
	var polar []eagleeye.Target
	for i := 0; i < 1500; i++ {
		polar = append(polar, eagleeye.Target{
			Lat: 78 + rng.Float64()*4,
			Lon: rng.Float64()*360 - 180,
		})
	}
	fmt.Println("Recapture deprioritization on a revisit-heavy polar field (6 h):")
	for _, dedup := range []bool{false, true} {
		r, err := eagleeye.Run(eagleeye.Config{
			Targets:        polar,
			Satellites:     4,
			DurationHours:  6,
			RecaptureDedup: dedup,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "without dedup"
		if dedup {
			label = "with dedup   "
		}
		fmt.Printf("  %s coverage %5.2f%%, captures %d, suppressed re-detections %d\n",
			label, r.CoveragePct, r.Captures, r.RecaptureSuppressed)
	}
}
