// Airplane tracking: the paper's moving-target use case (§5.2, §4.6).
// Aircraft cross a follower's footprint while the schedule is in flight,
// so the leader-to-follower lookahead distance matters: this example
// first reproduces the Fig. 10 lookahead analysis, then simulates the
// 55,196-aircraft air picture to show EagleEye still capturing moving
// targets that a high-res-only constellation misses.
package main

import (
	"fmt"
	"log"

	"eagleeye"
)

func main() {
	fmt.Println("Moving-target lookahead limits (Fig. 10):")
	for _, tc := range []struct {
		name    string
		speedMS float64
	}{
		{"container ship (14 m/s)", 14},
		{"regional turboprop (120 m/s)", 120},
		{"airliner (250 m/s)", 250},
	} {
		d := eagleeye.MaxLookaheadM(tc.speedMS, 0, 0, 0)
		fmt.Printf("  %-30s max lookahead %6.0f km\n", tc.name, d/1e3)
	}
	fmt.Println()
	fmt.Println("The paper's 100 km leader-follower separation is comfortable for")
	fmt.Println("ships; airliners drift kilometers during the transit, so some")
	fmt.Println("escape the aimed footprint -- the simulation below includes that.")
	fmt.Println()

	for _, cfg := range []struct {
		label string
		org   string
	}{
		{"eagleeye (1 leader + 1 follower per group)", eagleeye.LeaderFollower},
		{"high-res-only", eagleeye.HighResOnly},
	} {
		r, err := eagleeye.Run(eagleeye.Config{
			Organization:  cfg.org,
			Dataset:       eagleeye.DatasetAirplanes,
			Satellites:    8,
			DurationHours: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-46s %6.2f%% of %d aircraft captured\n",
			cfg.label, r.CoveragePct, r.TotalTargets)
	}
}
