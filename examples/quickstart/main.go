// Quickstart: simulate a minimal EagleEye group -- one low-resolution
// leader plus one high-resolution follower -- over a small custom target
// field, and compare it against a homogeneous high-resolution satellite
// pair. This is the paper's Fig. 1 story in a few lines of code.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eagleeye"
)

func main() {
	// A target field: clusters of interest along the orbit's ground track.
	rng := rand.New(rand.NewSource(7))
	var targets []eagleeye.Target
	for _, hub := range []struct{ lat, lon float64 }{
		{0, 0}, {25, 45}, {-30, 120}, {50, -75}, {-10, -55},
	} {
		for i := 0; i < 40; i++ {
			targets = append(targets, eagleeye.Target{
				Lat: hub.lat + rng.NormFloat64()*2,
				Lon: hub.lon + rng.NormFloat64()*2,
			})
		}
	}

	run := func(org string) *eagleeye.Result {
		r, err := eagleeye.Run(eagleeye.Config{
			Organization:  org,
			Satellites:    2,
			Targets:       targets,
			DurationHours: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	ee := run(eagleeye.LeaderFollower)
	hr := run(eagleeye.HighResOnly)
	lo := run(eagleeye.LowResOnly)

	fmt.Println("Two satellites, six hours, 200 targets:")
	fmt.Printf("  high-res-only:    %5.1f%% captured at 3 m/px\n", hr.CoveragePct)
	fmt.Printf("  eagleeye (1L+1F): %5.1f%% captured at 3 m/px\n", ee.CoveragePct)
	fmt.Printf("  low-res-only:     %5.1f%% seen, but only at 30 m/px\n", lo.CoveragePct)
	if hr.CoveragePct > 0 {
		fmt.Printf("\nEagleEye delivers %.1fx the high-resolution coverage of the\n"+
			"homogeneous high-res constellation at the same satellite count.\n",
			ee.CoveragePct/hr.CoveragePct)
	}
	fmt.Printf("Leader scheduling took %.2f ms per frame on average.\n", ee.SchedulerMeanMS)
}
