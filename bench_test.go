package eagleeye

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per figure; see the per-experiment index in
// DESIGN.md). Each benchmark times the figure's full experiment and prints
// the resulting table once, so
//
//	go test -bench=. -benchmem
//
// both measures the harness and reproduces the evaluation at
// experiments.DefaultScale. The paper-scale sweep is cmd/figures -full.
//
// Figures share a simulation cache, so the first coverage benchmark pays
// for the sweeps and later ones mostly reuse them. Tables are rendered
// outside the timed region and only once per benchmark, regardless of b.N.

import (
	"math/rand"
	"os"
	"testing"

	"eagleeye/internal/experiments"
)

var benchScale = experiments.DefaultScale()

// emit stops the timer, renders tables to stdout (the harness's
// deliverable), and reports a headline metric on the benchmark.
func emit(b *testing.B, tables []experiments.Table, metric string, value float64) {
	b.Helper()
	b.StopTimer()
	experiments.RenderAll(os.Stdout, tables)
	if metric != "" {
		b.ReportMetric(value, metric)
	}
}

// lastOf returns the final Y value of the labelled series, or -1.
func lastOf(t *experiments.Table, label string) float64 {
	s := t.FindSeries(label)
	if s == nil || len(s.Y) == 0 {
		return -1
	}
	return s.Y[len(s.Y)-1]
}

func BenchmarkFig01bConstellationSize(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig01b(benchScale)
	}
	emit(b, []experiments.Table{t}, "", 0)
}

func BenchmarkFig03OilTankAccuracy(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig03()
	}
	emit(b, []experiments.Table{t}, "err90@11.5(%)", lastOf(&t, "err90"))
}

func BenchmarkFig04CameraTradeoff(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig04Left()
	}
	emit(b, []experiments.Table{t}, "cameras", float64(len(t.Rows)))
}

func BenchmarkFig04CoverageVsSize(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig04Right(benchScale)
	}
	emit(b, []experiments.Table{t}, "lowres/highres", safeRatio(
		lastOf(&t, "low-res-only"), lastOf(&t, "high-res-only")))
}

func BenchmarkFig10Lookahead(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig10()
	}
	emit(b, []experiments.Table{t}, "plane-lookahead(km)", yAt(&t, "lookahead", 250))
}

func BenchmarkFig11aCoverage(b *testing.B) {
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = experiments.Fig11a(benchScale)
	}
	ratio := safeRatio(lastOf(&tables[0], "eagleeye-ilp"), lastOf(&tables[0], "high-res-only"))
	emit(b, tables, "ships-ee/highres", ratio)
}

func BenchmarkFig11bSlewRate(b *testing.B) {
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = experiments.Fig11b(benchScale)
	}
	emit(b, tables, "ships-slew10(%)", lastOf(&tables[0], "slew-10"))
}

func BenchmarkFig11cFollowers(b *testing.B) {
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = experiments.Fig11c(benchScale)
	}
	emit(b, tables, "", 0)
}

func BenchmarkFig12aSchedulerRuntime(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig12a(benchScale)
	}
	ilp := t.FindSeries("ilp")
	var worst float64
	for _, y := range ilp.Y {
		if y > worst {
			worst = y
		}
	}
	emit(b, []experiments.Table{t}, "ilp-max(ms)", worst)
}

func BenchmarkFig12bTargetsPerImage(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig12b(benchScale)
	}
	emit(b, []experiments.Table{t}, "", 0)
}

func BenchmarkFig13MixCamera(b *testing.B) {
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = experiments.Fig13(benchScale)
	}
	emit(b, tables, "ships-mix@11.8s(%)", lastOf(&tables[0], "mix-camera"))
}

func BenchmarkFig14aMissRatio(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig14a(benchScale)
	}
	emit(b, []experiments.Table{t}, "fraction@max", lastOf(&t, "fraction"))
}

func BenchmarkFig14bTileTime(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig14b()
	}
	emit(b, []experiments.Table{t}, "time@333px(s)", yAt(&t, "yolo_n", 300))
}

func BenchmarkFig14cClusteringGain(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig14c(benchScale)
	}
	emit(b, []experiments.Table{t}, "", 0)
}

func BenchmarkFig15Recall(b *testing.B) {
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = experiments.Fig15(benchScale)
	}
	emit(b, tables, "", 0)
}

func BenchmarkFig16Energy(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig16()
	}
	emit(b, []experiments.Table{t}, "leader-util@2x", yAt(&t, "leader-utilization", 2))
}

func BenchmarkClustering500(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.ClusteringClaim(500, benchScale.Seed)
	}
	emit(b, []experiments.Table{t}, "cover-ms", lastOf(&t, "ms"))
}

func BenchmarkAblationSlotCount(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AblationSlotCount(benchScale)
	}
	emit(b, []experiments.Table{t}, "", 0)
}

func BenchmarkAblationPolish(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AblationPolish(benchScale)
	}
	emit(b, []experiments.Table{t}, "", 0)
}

func BenchmarkAblationClusterILPvsGreedy(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AblationClusterILPvsGreedy(benchScale)
	}
	emit(b, []experiments.Table{t}, "", 0)
}

func BenchmarkExtensionOrbitPlanes(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.ExtOrbitPlanes(benchScale)
	}
	emit(b, []experiments.Table{t}, "", 0)
}

func BenchmarkExtensionRecapture(b *testing.B) {
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.ExtRecapture(benchScale)
	}
	emit(b, []experiments.Table{t}, "suppressed", lastOf(&t, "suppressed"))
}

// benchWorld scatters n static targets around a few ground-track
// hotspots the paper orbit crosses within the first hours.
func benchWorld(n int, seed int64) []Target {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{0, 0}, {20, 40}, {-30, 120}, {50, -80}, {-10, -60}}
	out := make([]Target, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		out = append(out, Target{
			Lat: c[0] + rng.NormFloat64()*3,
			Lon: c[1] + rng.NormFloat64()*3,
		})
	}
	return out
}

// benchmarkRunWorkers times one full 4-group leader-follower simulation
// through the public facade at the given worker count; the
// Sequential/Parallel4 pair reports the parallel runner's speedup.
func benchmarkRunWorkers(b *testing.B, workers int) {
	targets := benchWorld(1500, 9)
	cfg := Config{
		Satellites:    8,
		Targets:       targets,
		DurationHours: 1,
		Seed:          1,
		Workers:       workers,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSequential(b *testing.B) { benchmarkRunWorkers(b, 1) }
func BenchmarkRunParallel4(b *testing.B)  { benchmarkRunWorkers(b, 4) }

// safeRatio returns a/b, or 0 when b is 0.
func safeRatio(a, vb float64) float64 {
	if vb == 0 {
		return 0
	}
	return a / vb
}

// yAt returns the labelled series' Y at the given X, or -1.
func yAt(t *experiments.Table, label string, x float64) float64 {
	s := t.FindSeries(label)
	if s == nil {
		return -1
	}
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i]
		}
	}
	return -1
}
