package eagleeye

import "testing"

func TestSessionRejectsBadConfig(t *testing.T) {
	if _, err := NewSession(Config{}); err == nil {
		t.Error("missing workload accepted at session creation")
	}
	if _, err := NewSession(Config{Dataset: "nope"}); err == nil {
		t.Error("unknown dataset accepted at session creation")
	}
}

func TestSessionFirstRunMatchesDirectRun(t *testing.T) {
	cfg := Config{
		Satellites:    4,
		Targets:       benchWorld(400, 17),
		DurationHours: 1,
		Seed:          5,
		Workers:       1,
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.HighResCaptured != want.HighResCaptured || got.Detections != want.Detections ||
		got.Captures != want.Captures || got.Frames != want.Frames ||
		got.CoveragePct != want.CoveragePct || got.CrosslinkKB != want.CrosslinkKB ||
		got.LeaderEnergyUtilization != want.LeaderEnergyUtilization ||
		got.FollowerEnergyUtilization != want.FollowerEnergyUtilization {
		t.Errorf("session first run diverges from direct run:\n%+v\nvs\n%+v", got, want)
	}
}

func TestSessionStepsAggregate(t *testing.T) {
	cfg := Config{
		Satellites:    2,
		Targets:       benchWorld(200, 9),
		DurationHours: 6,
		Seed:          3,
		Workers:       1,
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var frames, detections int
	for i := 0; i < 3; i++ {
		r, err := s.Step(StepOptions{Hours: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		frames += r.Frames
		detections += r.Detections
	}
	agg := s.Aggregate()
	if agg.Steps != 3 || agg.SimulatedHours != 1.5 {
		t.Errorf("aggregate = %+v, want 3 steps / 1.5 h", agg)
	}
	if agg.Frames != frames || agg.Detections != detections {
		t.Errorf("aggregate counters diverge from per-step sums: %+v vs frames=%d detections=%d",
			agg, frames, detections)
	}
	if s.Steps() != 3 {
		t.Errorf("steps = %d", s.Steps())
	}
}

// TestSessionStepSequenceDeterministic: two sessions over the same config
// produce identical step sequences, and later windows are decorrelated
// from the first (distinct derived seeds).
func TestSessionStepSequenceDeterministic(t *testing.T) {
	cfg := Config{
		Satellites:    2,
		Targets:       benchWorld(200, 9),
		DurationHours: 1,
		Seed:          3,
		Workers:       1,
	}
	runSeq := func() []int {
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var seq []int
		for i := 0; i < 3; i++ {
			r, err := s.Step(StepOptions{})
			if err != nil {
				t.Fatal(err)
			}
			seq = append(seq, r.Detections, r.Captures, r.HighResCaptured)
		}
		return seq
	}
	a, b := runSeq(), runSeq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step sequences diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestStepSeedDerivation(t *testing.T) {
	if got := stepSeed(42, 0); got != 42 {
		t.Errorf("step 0 seed = %d, want the base seed", got)
	}
	seen := map[int64]bool{}
	for step := 0; step < 100; step++ {
		s := stepSeed(42, step)
		if s <= 0 {
			t.Fatalf("step %d seed = %d; must stay positive (0 means default)", step, s)
		}
		if seen[s] {
			t.Fatalf("step %d repeats seed %d", step, s)
		}
		seen[s] = true
	}
}
