package eagleeye

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func contCfg(seed int64) Config {
	return Config{
		Satellites:        4,
		FollowersPerGroup: 3,
		Targets:           benchWorld(400, 21),
		DurationHours:     2,
		Seed:              seed,
		Workers:           2,
		Continuous:        true,
	}
}

// deterministic projects the fields of a Result that are exact for a
// fixed seed (dropping wall-clock-derived scheduler/solver timings).
func deterministic(r *Result) Result {
	c := *r
	c.SchedulerMeanMS = 0
	c.SchedulerMaxMS = 0
	c.MissedDeadlines = 0
	c.SolverNodes = 0
	c.SolverIters = 0
	c.SolverPivotMS = 0
	return c
}

func TestStepRejectsInvalidHours(t *testing.T) {
	for _, continuous := range []bool{false, true} {
		cfg := contCfg(1)
		cfg.Continuous = continuous
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []float64{-1, -0.001, math.NaN(), math.Inf(1), math.Inf(-1)} {
			if _, err := s.Step(StepOptions{Hours: h}); err == nil {
				t.Errorf("continuous=%v: Hours=%v accepted (silently ran the full duration)", continuous, h)
			}
		}
		if s.Steps() != 0 {
			t.Errorf("continuous=%v: rejected steps consumed %d step indices", continuous, s.Steps())
		}
	}
}

// TestContinuousSessionMatchesRun: stepping a continuous session through
// its duration in uneven windows must land on the same cumulative result
// as the one-shot Run -- one timeline, not a sequence of reseeded windows.
func TestContinuousSessionMatchesRun(t *testing.T) {
	cfg := contCfg(11)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var last *Result
	for _, h := range []float64{0.25, 0.6, 0} { // 0 = run out the remainder
		if last, err = s.Step(StepOptions{Hours: h}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Done() {
		t.Fatal("session not done after stepping past its duration")
	}
	if got, want := deterministic(last), deterministic(want); got != want {
		t.Errorf("continuous session diverges from Run:\n%+v\nvs\n%+v", got, want)
	}
	agg := s.Aggregate()
	if agg.Steps != 3 || agg.SimulatedHours != cfg.DurationHours || agg.Frames != want.Frames {
		t.Errorf("aggregate %+v, want 3 steps / %v h / %d frames", agg, cfg.DurationHours, want.Frames)
	}
	if _, err := s.Step(StepOptions{}); err == nil {
		t.Error("stepping a completed continuous session succeeded")
	}
}

// TestContinuousCheckpointRestore is the facade acceptance differential:
// checkpoint mid-timeline, restore in a "new process", finish stepping --
// identical to never having stopped, including the aggregate cursor.
func TestContinuousCheckpointRestore(t *testing.T) {
	cfg := contCfg(12)
	ref, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Step(StepOptions{Hours: 0.7}); err != nil {
		t.Fatal(err)
	}
	refFinal, err := ref.Step(StepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(StepOptions{Hours: 0.7}); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := s.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	s.Close() // the first "process" exits

	r, err := RestoreSession(bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Steps() != 1 {
		t.Fatalf("restored step count %d, want 1", r.Steps())
	}
	final, err := r.Step(StepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := deterministic(final), deterministic(refFinal); got != want {
		t.Errorf("restored session diverges from uninterrupted:\n%+v\nvs\n%+v", got, want)
	}
	if ra, wa := r.Aggregate(), ref.Aggregate(); ra != wa {
		t.Errorf("restored aggregate diverges: %+v vs %+v", ra, wa)
	}
}

// TestWindowedCheckpointRestore: a windowed session's state is its
// cursor; restoring must continue the derived-seed sequence exactly.
func TestWindowedCheckpointRestore(t *testing.T) {
	cfg := Config{
		Satellites:    2,
		Targets:       benchWorld(200, 9),
		DurationHours: 1,
		Seed:          3,
		Workers:       1,
	}
	ref, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Step(StepOptions{}); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Step(StepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(StepOptions{}); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := s.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSession(bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Step(StepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dg, dw := deterministic(got), deterministic(want); dg != dw {
		t.Errorf("restored windowed session diverges on step 1:\n%+v\nvs\n%+v", dg, dw)
	}
	if r.Aggregate() != ref.Aggregate() {
		t.Errorf("aggregates diverge: %+v vs %+v", r.Aggregate(), ref.Aggregate())
	}
}

func TestRestoreRejectsJunk(t *testing.T) {
	if _, err := RestoreSession(strings.NewReader("definitely not a checkpoint")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := RestoreSession(strings.NewReader("EESESSV1")); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

// TestFacadeFaultEvents: the public Events surface maps onto the
// simulator's fault schedule and reports its accounting.
func TestFacadeFaultEvents(t *testing.T) {
	cfg := contCfg(13)
	cfg.Continuous = false
	cfg.Events = []FaultEvent{
		{AtHours: 0.5, Kind: FaultFollowerFail, Group: 0, Follower: 1},
		{AtHours: 1.2, Kind: FaultLeaderFail, Group: 0},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.EventsApplied != 2 || r.SatsFailed != 2 || r.LeaderReelections != 1 {
		t.Errorf("fault accounting: applied %d failed %d reelected %d, want 2/2/1",
			r.EventsApplied, r.SatsFailed, r.LeaderReelections)
	}

	cfg.Events = []FaultEvent{{AtHours: 1, Kind: "meteor-strike"}}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown fault kind accepted")
	}
	cfg.Events = []FaultEvent{{AtHours: -1, Kind: FaultLeaderFail}}
	if _, err := Run(cfg); err == nil {
		t.Error("negative fault time accepted")
	}
}

// TestContinuousTraceStitching: trace bytes written before a checkpoint
// plus those written after restore equal an uninterrupted session's
// stream (modulo wall-clock fields, which decodeTrace-style consumers
// ignore; here the deterministic prefix of each line is compared).
func TestContinuousTraceStitching(t *testing.T) {
	cfg := contCfg(14)
	var whole bytes.Buffer
	ref, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Step(StepOptions{Trace: &whole}); err != nil {
		t.Fatal(err)
	}

	var pre, post bytes.Buffer
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(StepOptions{Hours: 0.8, Trace: &pre}); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := s.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r, err := RestoreSession(bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Step(StepOptions{Trace: &post}); err != nil {
		t.Fatal(err)
	}

	a := strings.Split(strings.TrimRight(whole.String(), "\n"), "\n")
	b := strings.Split(strings.TrimRight(pre.String()+post.String(), "\n"), "\n")
	if len(a) != len(b) {
		t.Fatalf("stitched trace has %d records, uninterrupted %d", len(b), len(a))
	}
	for i := range a {
		// Every line starts with the deterministic identity fields
		// (group, frame, time, position, counts) before any timing.
		ga, gb := a[i][:strings.Index(a[i], `"sched_ms"`)], b[i][:strings.Index(b[i], `"sched_ms"`)]
		if ga != gb {
			t.Fatalf("trace line %d diverges:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}
