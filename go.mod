module eagleeye

go 1.22
